"""Tests for the color-space conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.color.spaces import (
    convert,
    hsv_to_rgb,
    rgb_to_hsv,
    rgb_to_ycc,
    rgb_to_yiq,
    ycc_to_rgb,
    yiq_to_rgb,
)
from repro.exceptions import ImageFormatError
from repro.imaging.image import Image


def random_rgb(seed: int, shape=(6, 8, 3)) -> Image:
    return Image(np.random.default_rng(seed).uniform(size=shape))


class TestYcc:
    def test_luma_of_primaries(self):
        rgb = Image(np.array([[[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]]]))
        ycc = rgb_to_ycc(rgb)
        assert ycc.pixels[0, 0, 0] == pytest.approx(0.299)
        assert ycc.pixels[0, 1, 0] == pytest.approx(0.587)
        assert ycc.pixels[0, 2, 0] == pytest.approx(0.114)

    def test_gray_has_neutral_chroma(self):
        rgb = Image(np.full((2, 2, 3), 0.5))
        ycc = rgb_to_ycc(rgb)
        np.testing.assert_allclose(ycc.pixels[:, :, 1:], 0.5, atol=1e-9)

    def test_roundtrip(self):
        image = random_rgb(0)
        back = ycc_to_rgb(rgb_to_ycc(image))
        np.testing.assert_allclose(back.pixels, image.pixels, atol=1e-9)

    def test_tags_space(self):
        assert rgb_to_ycc(random_rgb(1)).color_space == "ycc"

    def test_rejects_wrong_input_space(self):
        ycc = rgb_to_ycc(random_rgb(2))
        with pytest.raises(ImageFormatError):
            rgb_to_ycc(ycc)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, seed):
        image = random_rgb(seed, shape=(3, 3, 3))
        back = ycc_to_rgb(rgb_to_ycc(image))
        np.testing.assert_allclose(back.pixels, image.pixels, atol=1e-9)


class TestYiq:
    def test_luma_matches_ycc_luma(self):
        image = random_rgb(3)
        np.testing.assert_allclose(rgb_to_yiq(image).pixels[:, :, 0],
                                   rgb_to_ycc(image).pixels[:, :, 0],
                                   atol=1e-9)

    def test_gray_has_neutral_chroma(self):
        yiq = rgb_to_yiq(Image(np.full((2, 2, 3), 0.7)))
        np.testing.assert_allclose(yiq.pixels[:, :, 1:], 0.5, atol=1e-9)

    def test_roundtrip(self):
        image = random_rgb(4)
        back = yiq_to_rgb(rgb_to_yiq(image))
        np.testing.assert_allclose(back.pixels, image.pixels, atol=1e-9)


class TestHsv:
    def test_primary_hues(self):
        rgb = Image(np.array([[[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]]]))
        hsv = rgb_to_hsv(rgb)
        np.testing.assert_allclose(hsv.pixels[0, :, 0], [0.0, 1 / 3, 2 / 3],
                                   atol=1e-9)
        np.testing.assert_allclose(hsv.pixels[0, :, 1], 1.0)
        np.testing.assert_allclose(hsv.pixels[0, :, 2], 1.0)

    def test_gray_has_zero_saturation(self):
        hsv = rgb_to_hsv(Image(np.full((2, 2, 3), 0.4)))
        np.testing.assert_allclose(hsv.pixels[:, :, 1], 0.0, atol=1e-9)
        np.testing.assert_allclose(hsv.pixels[:, :, 2], 0.4, atol=1e-9)

    def test_black(self):
        hsv = rgb_to_hsv(Image(np.zeros((1, 1, 3))))
        np.testing.assert_allclose(hsv.pixels[0, 0], [0, 0, 0], atol=1e-9)

    def test_roundtrip(self):
        image = random_rgb(5)
        back = hsv_to_rgb(rgb_to_hsv(image))
        np.testing.assert_allclose(back.pixels, image.pixels, atol=1e-7)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, seed):
        image = random_rgb(seed, shape=(4, 4, 3))
        back = hsv_to_rgb(rgb_to_hsv(image))
        np.testing.assert_allclose(back.pixels, image.pixels, atol=1e-7)


class TestConvert:
    def test_identity(self):
        image = random_rgb(6)
        assert convert(image, "rgb") is image

    @pytest.mark.parametrize("target", ["ycc", "yiq", "hsv"])
    def test_rgb_to_target_and_back(self, target):
        image = random_rgb(7)
        converted = convert(image, target)
        assert converted.color_space == target
        back = convert(converted, "rgb")
        np.testing.assert_allclose(back.pixels, image.pixels, atol=1e-7)

    def test_cross_conversion_routes_through_rgb(self):
        image = random_rgb(8)
        direct = convert(convert(image, "ycc"), "yiq")
        expected = rgb_to_yiq(image)
        np.testing.assert_allclose(direct.pixels, expected.pixels,
                                   atol=1e-7)

    def test_gray_rejected(self, gray_image):
        with pytest.raises(ImageFormatError):
            convert(gray_image, "ycc")

    def test_preserves_name(self):
        image = random_rgb(9).with_name("hello")
        assert convert(image, "ycc").name == "hello"
