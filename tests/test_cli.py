"""Tests for the command-line front end."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerateDataset:
    def test_writes_images_and_labels(self, tmp_path):
        out = tmp_path / "data"
        status = main(["generate-dataset", str(out),
                       "--images-per-class", "1", "--seed", "5"])
        assert status == 0
        files = os.listdir(out)
        assert "labels.txt" in files
        ppms = [f for f in files if f.endswith(".ppm")]
        assert len(ppms) == 10  # one per scene class
        labels = (out / "labels.txt").read_text()
        assert "flowers-0000 flowers" in labels


class TestIndexAndQuery:
    @pytest.fixture
    def image_dir(self, tmp_path):
        out = tmp_path / "data"
        main(["generate-dataset", str(out), "--images-per-class", "2",
              "--seed", "5"])
        os.remove(out / "labels.txt")
        return out

    def test_full_cycle(self, tmp_path, image_dir, capsys):
        db_path = tmp_path / "walrus.db"
        status = main(["index", str(image_dir), str(db_path),
                       "--window-min", "16", "--window-max", "32"])
        assert status == 0
        assert db_path.exists()
        capsys.readouterr()

        query_file = next(str(image_dir / f) for f in os.listdir(image_dir)
                          if f.startswith("flowers"))
        status = main(["query", str(db_path), query_file,
                       "--epsilon", "0.085", "--top", "5"])
        assert status == 0
        output = capsys.readouterr().out
        assert "query regions:" in output
        # The query image itself is in the database: best match.
        first_result = output.splitlines()[1]
        assert os.path.basename(query_file).removesuffix(".ppm") \
            in first_result

    def test_index_empty_directory_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        status = main(["index", str(empty), str(tmp_path / "db")])
        assert status == 1
        assert "no supported images" in capsys.readouterr().err

    def test_walrus_error_reported(self, tmp_path, image_dir, capsys):
        # Query against a database file that isn't one.
        junk = tmp_path / "junk.db"
        junk.write_bytes(b"\x80\x04N.")  # pickled None
        query_file = str(image_dir / os.listdir(image_dir)[0])
        status = main(["query", str(junk), query_file])
        assert status == 1
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_walrus_only_table(self, capsys):
        status = main(["evaluate", "--images-per-class", "2",
                       "--walrus-only", "--k", "2",
                       "--window-min", "16", "--window-max", "32"])
        assert status == 0
        output = capsys.readouterr().out
        assert "walrus" in output
        assert "P@2" in output


class TestSceneQueryAndDescribe:
    @pytest.fixture
    def indexed(self, tmp_path):
        data = tmp_path / "data"
        main(["generate-dataset", str(data), "--images-per-class", "2",
              "--seed", "5"])
        os.remove(data / "labels.txt")
        db_path = tmp_path / "walrus.db"
        main(["index", str(data), str(db_path), "--bulk",
              "--window-min", "16", "--window-max", "32"])
        return data, db_path

    def test_scene_query(self, indexed, capsys):
        data, db_path = indexed
        capsys.readouterr()
        query_file = next(str(data / f) for f in os.listdir(data)
                          if f.startswith("flowers"))
        status = main(["query", str(db_path), query_file,
                       "--scene", "0", "0", "64", "64", "--top", "3"])
        assert status == 0
        assert "query regions:" in capsys.readouterr().out

    def test_describe(self, indexed, capsys):
        _, db_path = indexed
        capsys.readouterr()
        assert main(["describe", str(db_path)]) == 0
        output = capsys.readouterr().out
        assert "images: 20" in output
        assert "regions:" in output


class TestFsck:
    @pytest.fixture
    def on_disk_db(self, tmp_path):
        from repro.core.database import WalrusDatabase
        from repro.core.parameters import ExtractionParameters
        from repro.datasets.generator import render_scene

        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(
            directory, ExtractionParameters(window_min=16, window_max=32,
                                            stride=8))
        database.add_images([
            render_scene(label, seed=seed, name=f"{label}-{seed}")
            for seed, label in enumerate(["flowers", "ocean", "sunset"])])
        database.close()
        return directory

    def test_clean_database_exits_zero(self, on_disk_db, capsys):
        assert main(["fsck", on_disk_db]) == 0
        assert "clean" in capsys.readouterr().out

    def test_corrupted_page_exits_nonzero(self, on_disk_db, capsys):
        import os as _os

        from repro.core.database import WalrusDatabase
        from repro.index.faults import corrupt_page

        database = WalrusDatabase.open(on_disk_db)
        root_id = database.index.root_id
        database.close()
        page_path = _os.path.join(on_disk_db, WalrusDatabase.PAGE_FILE)
        corrupt_page(page_path, root_id)
        assert main(["fsck", on_disk_db]) == 1
        output = capsys.readouterr().out
        assert f"page {root_id}" in output
        assert "problem(s) found" in output

    def test_missing_files_exit_nonzero(self, tmp_path, capsys):
        directory = tmp_path / "empty"
        directory.mkdir()
        assert main(["fsck", str(directory)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_not_a_directory_exits_nonzero(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "nope")]) == 1
        assert "not a directory" in capsys.readouterr().err

    def test_truncated_page_file_exits_nonzero(self, on_disk_db, capsys):
        import os as _os

        from repro.core.database import WalrusDatabase

        page_path = _os.path.join(on_disk_db, WalrusDatabase.PAGE_FILE)
        with open(page_path, "r+b") as stream:
            stream.truncate(_os.path.getsize(page_path) * 2 // 3)
        assert main(["fsck", on_disk_db]) == 1
        assert "problem(s) found" in capsys.readouterr().out


class TestServeMetrics:
    def test_serves_and_exits_after_duration(self, capsys):
        import re
        import threading
        import urllib.request

        results: dict[str, object] = {}

        def scrape() -> None:
            # Wait for the startup line, then scrape the live endpoint.
            for _ in range(100):
                output = results.get("announce")
                if output:
                    break
                threading.Event().wait(0.01)
            match = re.search(r"http://[\d.]+:\d+", str(output))
            assert match is not None
            with urllib.request.urlopen(match.group(0) + "/metrics",
                                        timeout=5) as response:
                results["status"] = response.status
                results["type"] = response.headers.get("Content-Type")
                results["body"] = response.read().decode("utf-8")

        worker = threading.Thread(target=scrape)

        def run() -> int:
            code = main(["serve-metrics", "--port", "0",
                         "--duration", "1.0"])
            return code

        runner = threading.Thread(
            target=lambda: results.__setitem__("exit", run()))
        runner.start()
        for _ in range(200):
            captured = capsys.readouterr().out
            if captured:
                results["announce"] = captured
                break
            threading.Event().wait(0.01)
        worker.start()
        worker.join(timeout=10)
        runner.join(timeout=10)
        assert results["exit"] == 0
        assert results["status"] == 200
        assert "version=0.0.4" in str(results["type"])

    def test_database_without_image_is_usage_error(self, capsys):
        assert main(["serve-metrics", "--database", "somewhere"]) == 2
        assert "together" in capsys.readouterr().err
