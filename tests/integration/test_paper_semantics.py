"""Paper-semantics pack: Section 6.4's claim, with EXPLAIN accounting.

Section 6.4 demonstrates WALRUS retrieving images containing the query
object *at different sizes and locations, in different settings* —
the region-based similarity model's core advantage over whole-image
signatures.  This test reproduces that claim on a composed scene (the
target object embedded in a collage of other content) and, unlike the
classic end-to-end tests, also pins down the *mechanism* via the
``explain=True`` query report: candidate funnels, probe accounting and
their determinism across identical runs and rebuilt databases.
"""

from __future__ import annotations

import pytest

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import render_scene
from repro.imaging.draw import Canvas, draw_flower

PARAMS = ExtractionParameters(window_min=16, window_max=64, stride=8)
QP = QueryParameters(epsilon=0.085)


def compose_scene(height: int, width: int, *, flower_cy: float,
                  flower_cx: float, flower_radius: float,
                  name: str):
    """A collage-style scene: the target flower among other objects."""
    canvas = Canvas(height, width, (0.1, 0.45, 0.12))
    # Unrelated content sharing the frame with the target object.
    draw_flower(canvas, height * 0.75, width * 0.15, 9.0,
                (0.2, 0.2, 0.9), (0.9, 0.9, 0.9))
    draw_flower(canvas, height * 0.2, width * 0.85, 7.0,
                (0.9, 0.5, 0.1), (0.3, 0.2, 0.1))
    draw_flower(canvas, flower_cy, flower_cx, flower_radius,
                (0.85, 0.1, 0.1), (0.9, 0.8, 0.2))
    return canvas.to_image(name=name)


def build_database() -> WalrusDatabase:
    db = WalrusDatabase(PARAMS)
    db.add_images([
        # The target: red flower large, upper-left-ish, among clutter.
        compose_scene(96, 128, flower_cy=34, flower_cx=40,
                      flower_radius=24, name="target"),
        # Distractor scenes with no red flower anywhere.
        render_scene("night_sky", seed=1001, name="d-night_sky"),
        render_scene("ocean", seed=1002, name="d-ocean"),
        render_scene("desert", seed=1003, name="d-desert"),
        render_scene("brick_wall", seed=1004, name="d-brick_wall"),
    ])
    return db


@pytest.fixture(scope="module")
def database():
    return build_database()


@pytest.fixture(scope="module")
def query_image():
    # Same object, translated to the lower right and scaled down ~2x.
    return compose_scene(96, 128, flower_cy=62, flower_cx=92,
                         flower_radius=13, name="query")


class TestSection64Retrieval:
    def test_translated_scaled_object_outranks_distractors(
            self, database, query_image):
        result = database.query(query_image, QP)
        assert result.names(), "query matched nothing"
        assert result.names()[0] == "target"

    def test_report_explains_the_retrieval(self, database, query_image):
        """The EXPLAIN report must show a live funnel: regions were
        extracted, the index was probed, candidates included the
        target, and the counts agree with the public stats."""
        result = database.query(query_image, QP, explain=True)
        report = result.report
        assert report is not None
        assert report.query_regions == result.stats.query_regions > 0
        assert report.candidate_images == result.stats.candidate_images
        assert report.candidate_images >= 1
        assert report.matched_images >= 1
        assert report.returned_images == len(result.matches)
        assert report.matched_images >= report.returned_images
        assert report.candidate_images >= report.matched_images
        # The probe did real work on a fresh funnel or hit the caches;
        # either way the pair accounting must cover the candidates.
        total_probes = (report.probe.probe_cache_hits
                        + report.probe.probe_cache_misses)
        assert total_probes == report.query_regions
        assert report.probe.pairs_retained >= report.candidate_images
        assert report.probe.pairs_refined_out == 0  # refinement off
        # Stage timings cover the whole query path.
        stage_names = [timing.name for timing in report.stages]
        assert stage_names == ["extract", "probe", "match", "rank"]
        assert report.total_seconds >= report.stage_seconds("probe")

    def test_report_counts_deterministic_across_rebuilds(
            self, database, query_image):
        """Identical data + parameters => identical deterministic
        counts, on a repeat query (cache-hot) and on a from-scratch
        database (cache-cold)."""
        first = database.query(query_image, QP, explain=True).report
        repeat = database.query(query_image, QP, explain=True).report
        rebuilt = build_database().query(query_image, QP,
                                         explain=True).report
        cache_dependent = {"signature_cache_hit", "probe_cache_hits",
                           "probe_cache_misses", "probes_executed",
                           "index_node_reads"}
        for key, value in first.counts().items():
            assert repeat.counts()[key] == value, key
            if key not in cache_dependent:
                assert rebuilt.counts()[key] == value, key
        # The cache-cold run executed every probe; a cache-hot repeat
        # executed none and touched no index nodes.
        assert rebuilt.probe.probes_executed == rebuilt.query_regions
        assert repeat.probe.probes_executed == 0
        assert repeat.probe.node_reads == 0
        assert repeat.signature_cache_hit

    def test_report_matches_cache_stats(self, query_image):
        """The report's probe-cache accounting agrees with the
        database's own ``cache_stats()`` counters."""
        db = build_database()
        report = db.query(query_image, QP, explain=True).report
        stats = db.cache_stats()
        assert stats["probes"].misses == report.probe.probe_cache_misses
        assert stats["probes"].hits == report.probe.probe_cache_hits
        assert stats["signatures"].hits == 0
        report2 = db.query(query_image, QP, explain=True).report
        stats2 = db.cache_stats()
        assert stats2["probes"].hits == (report.probe.probe_cache_hits
                                         + report2.probe.probe_cache_hits)
        assert stats2["signatures"].hits == 1
