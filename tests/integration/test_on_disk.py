"""Integration tests for the directory-based on-disk database."""

from __future__ import annotations

import os

import pytest

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import render_scene
from repro.exceptions import DatabaseError

PARAMS = ExtractionParameters(window_min=16, window_max=32, stride=8)


def scenes():
    return [render_scene(label, seed=seed, name=f"{label}-{seed}")
            for seed, label in enumerate(
                ["flowers", "flowers", "ocean", "sunset", "night_sky"])]


class TestLifecycle:
    def test_create_checkpoint_open(self, tmp_path):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_images(scenes())
        query = render_scene("flowers", seed=42)
        expected = database.query(query,
                                  QueryParameters(epsilon=0.085)).names()
        database.close()

        reopened = WalrusDatabase.open_on_disk(directory)
        assert len(reopened) == 5
        actual = reopened.query(query,
                                QueryParameters(epsilon=0.085)).names()
        assert actual == expected
        reopened.index.check_invariants()
        reopened.close()

    def test_updates_survive_reopen(self, tmp_path):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_images(scenes())
        database.remove_image(0)
        database.add_image(render_scene("desert", seed=9, name="late"))
        database.close()

        reopened = WalrusDatabase.open_on_disk(directory)
        assert len(reopened) == 5
        names = {record.name for record in reopened.images.values()}
        assert "late" in names
        assert "flowers-0" not in names
        reopened.close()

    def test_bulk_load_on_disk(self, tmp_path):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_images(scenes(), bulk=True)
        database.close()
        reopened = WalrusDatabase.open_on_disk(directory)
        reopened.index.check_invariants()
        assert reopened.region_count > 0
        reopened.close()

    def test_create_twice_rejected(self, tmp_path):
        directory = str(tmp_path / "db")
        WalrusDatabase.create_on_disk(directory, PARAMS).close()
        with pytest.raises(DatabaseError):
            WalrusDatabase.create_on_disk(directory, PARAMS)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(DatabaseError):
            WalrusDatabase.open_on_disk(str(tmp_path / "nothing"))

    def test_checkpoint_requires_directory(self):
        database = WalrusDatabase(PARAMS)
        with pytest.raises(DatabaseError):
            database.checkpoint()

    def test_checkpoint_is_atomic_file_swap(self, tmp_path):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_image(scenes()[0])
        database.checkpoint()
        first = os.path.getmtime(
            os.path.join(directory, WalrusDatabase.META_FILE))
        database.add_image(scenes()[1])
        database.checkpoint()
        assert os.path.exists(
            os.path.join(directory, WalrusDatabase.META_FILE))
        # No stray temp file left behind.
        assert not any(name.endswith(".tmp")
                       for name in os.listdir(directory))
        database.close()

    def test_close_in_memory_database_is_safe(self):
        database = WalrusDatabase(PARAMS)
        database.close()  # no directory: just releases the store

    def test_full_lifecycle_round_trip(self, tmp_path):
        """create → add → checkpoint → remove → checkpoint → reopen
        answers queries identically to the pre-close database."""
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_images(scenes())
        database.checkpoint()
        database.remove_image(1)
        database.checkpoint()
        database.add_image(render_scene("desert", seed=9, name="late"))
        database.checkpoint()
        query = render_scene("flowers", seed=42)
        expected = database.query(query,
                                  QueryParameters(epsilon=0.085)).names()
        expected_ids = sorted(database.images)
        database.close()

        reopened = WalrusDatabase.open_on_disk(directory)
        assert sorted(reopened.images) == expected_ids
        assert reopened.query(query,
                              QueryParameters(epsilon=0.085)).names() \
            == expected
        reopened.index.check_invariants()
        assert reopened.index.verify() == []
        reopened.close()

    def test_compact_preserves_contents_and_shrinks(self, tmp_path):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS,
                                                 buffer_pages=4)
        database.add_images(scenes())
        # Churn: repeated checkpoints append dead page/table versions.
        for image_id in (0, 1):
            database.remove_image(image_id)
            database.checkpoint()
        query = render_scene("flowers", seed=42)
        expected = database.query(query,
                                  QueryParameters(epsilon=0.085)).names()
        page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
        before = os.path.getsize(page_path)
        database.index.store.compact()
        after = os.path.getsize(page_path)
        assert after < before
        assert database.query(query,
                              QueryParameters(epsilon=0.085)).names() \
            == expected
        database.close()

        reopened = WalrusDatabase.open_on_disk(directory)
        assert reopened.query(query,
                              QueryParameters(epsilon=0.085)).names() \
            == expected
        reopened.close()

    def test_database_close_is_idempotent(self, tmp_path):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_image(scenes()[0])
        database.close()
        database.close()  # second close is a no-op, not a StorageError

    def test_failed_create_allows_retry(self, tmp_path, monkeypatch):
        directory = str(tmp_path / "db")

        def explode(self):
            raise RuntimeError("boom")

        monkeypatch.setattr(WalrusDatabase, "checkpoint", explode)
        with pytest.raises(RuntimeError):
            WalrusDatabase.create_on_disk(directory, PARAMS)
        monkeypatch.undo()
        assert not os.path.exists(
            os.path.join(directory, WalrusDatabase.PAGE_FILE))
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_image(scenes()[0])
        database.close()
        assert len(WalrusDatabase.open_on_disk(directory)) == 1

    def test_save_rejected_for_disk_backed(self, tmp_path):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_image(scenes()[0])
        with pytest.raises(DatabaseError):
            database.save(str(tmp_path / "snap.pickle"))
        database.close()
