"""Crash-consistency: kill a checkpoint at every fault point and prove
the database reopens to the last consistent state.

The workload commits a baseline checkpoint, then mutates the database
(add + remove images) and checkpoints again while a
:class:`FaultInjectingPageStore` crashes the process at the Nth
mutating file operation.  For *every* N the reopened database must
answer queries identically to either the baseline or the completed
second checkpoint — never raise ``UnpicklingError``, never return
silently wrong results.
"""

from __future__ import annotations

import os

import pytest

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import render_scene
from repro.exceptions import StorageError, WalrusError
from repro.index.faults import (
    FaultInjectingPageStore,
    FaultPlan,
    SimulatedCrash,
)

pytestmark = pytest.mark.faults

PARAMS = ExtractionParameters(window_min=16, window_max=32, stride=8)
QP = QueryParameters(epsilon=0.085)


def scenes():
    return [render_scene(label, seed=seed, name=f"{label}-{seed}")
            for seed, label in enumerate(
                ["flowers", "flowers", "ocean", "sunset"])]


@pytest.fixture(scope="module")
def query_image():
    return render_scene("flowers", seed=42)


def run_workload(directory, plan, query_image):
    """Baseline checkpoint, then a faulted mutate + checkpoint.

    Returns ``(baseline_ops, total_ops, baseline_names, final_names)``
    when the plan lets the workload complete.
    """
    os.makedirs(directory, exist_ok=True)
    page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
    store = FaultInjectingPageStore(page_path, buffer_pages=8, plan=plan)
    database = WalrusDatabase.create_on_disk(directory, PARAMS, store=store)
    database.add_images(scenes())
    database.checkpoint()
    baseline_ops = plan.mutation_ops
    baseline_names = database.query(query_image, QP).names()

    database.remove_image(0)
    database.add_image(render_scene("desert", seed=9, name="late"))
    database.checkpoint()
    final_names = database.query(query_image, QP).names()
    total_ops = plan.mutation_ops
    database.close()
    return baseline_ops, total_ops, baseline_names, final_names


class TestCheckpointCrashes:
    def test_every_fault_point_recovers(self, tmp_path, query_image):
        probe_dir = str(tmp_path / "probe")
        baseline_ops, total_ops, baseline_names, final_names = run_workload(
            probe_dir, FaultPlan(), query_image)
        assert total_ops > baseline_ops

        outcomes = {"baseline": 0, "final": 0}
        for crash_at in range(baseline_ops + 1, total_ops + 1):
            directory = str(tmp_path / f"crash-{crash_at}")
            plan = FaultPlan(seed=crash_at, crash_after_ops=crash_at)
            with pytest.raises(SimulatedCrash):
                run_workload(directory, plan, query_image)

            # Restarted process: plain stores, no faults.
            reopened = WalrusDatabase.open_on_disk(directory)
            names = set(record.name for record in reopened.images.values())
            answered = reopened.query(query_image, QP).names()
            if "late" in names:
                assert answered == final_names
                assert "flowers-0" not in names
                outcomes["final"] += 1
            else:
                assert answered == baseline_names
                assert "flowers-0" in names
                outcomes["baseline"] += 1
            reopened.index.check_invariants()
            reopened.close()
        # The sweep must observe recovery to the *old* state at least
        # once (early crashes); late crash points may or may not reach
        # the new state depending on where the meta swap lands.
        assert outcomes["baseline"] > 0

    def test_crash_before_first_checkpoint_cleans_up(self, tmp_path,
                                                     query_image):
        # Crash inside create_on_disk's initial commit: the directory
        # must be retriable rather than poisoned by a half-written
        # page file.
        probe_dir = str(tmp_path / "probe")
        os.makedirs(probe_dir)
        probe = FaultInjectingPageStore(
            os.path.join(probe_dir, WalrusDatabase.PAGE_FILE),
            buffer_pages=8, plan=FaultPlan())
        construction_ops = probe.plan.mutation_ops
        probe.close()

        directory = str(tmp_path / "db")
        os.makedirs(directory)
        page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
        store = FaultInjectingPageStore(
            page_path, buffer_pages=8,
            plan=FaultPlan(crash_after_ops=construction_ops + 2))
        with pytest.raises(SimulatedCrash):
            WalrusDatabase.create_on_disk(directory, PARAMS, store=store)
        assert not os.path.exists(page_path)
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_images(scenes())
        database.close()
        reopened = WalrusDatabase.open_on_disk(directory)
        assert len(reopened) == 4
        reopened.close()

    def test_torn_meta_write_keeps_previous_checkpoint(self, tmp_path,
                                                       query_image):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_images(scenes())
        database.close()
        expected = None
        # Simulate a crash that left a torn metadata temp file: the
        # committed meta must win and the leftover must not break open.
        meta_tmp = os.path.join(directory,
                                WalrusDatabase.META_FILE + ".tmp")
        with open(meta_tmp, "wb") as stream:
            stream.write(b"\x80\x05garbage")
        reopened = WalrusDatabase.open_on_disk(directory)
        assert len(reopened) == 4
        expected = reopened.query(query_image, QP).names()
        reopened.close()
        assert expected is not None

    def test_corrupt_meta_record_is_structured_error(self, tmp_path):
        # Flip bytes inside the store's committed metadata record: the
        # checksum must catch it and open must fail with a structured
        # error, not an UnpicklingError or a silently stale catalog.
        from repro.index.pagestore import open_page_store
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_images(scenes()[:2])
        database.close()
        page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
        store = open_page_store(page_path, readonly=True)
        meta_offset, meta_size = store._meta_location
        store.close()
        with open(page_path, "r+b") as stream:
            stream.seek(meta_offset + meta_size // 2)
            stream.write(b"\xff\xfe\xfd")
        with pytest.raises(WalrusError) as excinfo:
            WalrusDatabase.open_on_disk(directory)
        assert "metadata" in str(excinfo.value)

    def test_truncated_page_file_is_structured_error(self, tmp_path):
        directory = str(tmp_path / "db")
        database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.add_images(scenes()[:2])
        database.close()
        page_path = os.path.join(directory, WalrusDatabase.PAGE_FILE)
        with open(page_path, "r+b") as stream:
            stream.truncate(os.path.getsize(page_path) // 2)
        with pytest.raises(StorageError):
            store = WalrusDatabase.open_on_disk(directory)
            # Truncation may only bite when pages are faulted in.
            list(store.index.items())
