"""Integration tests: the full pipeline on the synthetic collection.

These are the paper's claims as executable assertions, on a small but
non-trivial database.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.wbiis import WbiisRetriever
from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import DatasetSpec, generate_dataset, render_scene
from repro.evaluation.harness import (
    baseline_ranker,
    evaluate_retriever,
    make_queries,
    walrus_ranker,
)

PARAMS = ExtractionParameters(window_min=16, window_max=64, stride=8)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(DatasetSpec(images_per_class=5, seed=31))


@pytest.fixture(scope="module")
def database(dataset):
    db = WalrusDatabase(PARAMS)
    db.add_images(dataset.images)
    return db


class TestRetrievalQuality:
    def test_indexed_flower_query_finds_its_class(self, dataset, database):
        query = render_scene("flowers", seed=555, name="held-out")
        result = database.query(query, QueryParameters(epsilon=0.085))
        names = result.names()
        assert names, "query matched nothing"
        top = names[:5]
        flower_hits = sum(1 for name in top if name.startswith("flowers"))
        assert flower_hits >= 2

    def test_walrus_beats_wbiis_on_flowers(self, dataset, database):
        """The Figure 7 vs Figure 8 comparison, quantified: WALRUS's
        precision on the translation/scale-heavy flower class must
        exceed WBIIS's."""
        wbiis = WbiisRetriever()
        wbiis.add_images(dataset.images)
        queries = [(label, image)
                   for label, image in make_queries(dataset, per_class=2)
                   if label == "flowers"]
        walrus_eval = evaluate_retriever(
            "walrus", walrus_ranker(database,
                                    QueryParameters(epsilon=0.085)),
            dataset, queries, k=5)
        wbiis_eval = evaluate_retriever(
            "wbiis", baseline_ranker(wbiis), dataset, queries, k=5)
        assert walrus_eval.mean_precision >= wbiis_eval.mean_precision

    def test_overall_precision_reasonable(self, dataset, database):
        evaluation = evaluate_retriever(
            "walrus", walrus_ranker(database,
                                    QueryParameters(epsilon=0.085)),
            dataset, make_queries(dataset), k=5)
        assert evaluation.mean_precision > 0.6

    def test_query_stats_scale_with_epsilon(self, database):
        """Table 1's monotonicity on a real database."""
        query = render_scene("flowers", seed=777)
        rows = []
        for epsilon in (0.05, 0.06, 0.07, 0.08, 0.09):
            stats = database.query(query,
                                   QueryParameters(epsilon=epsilon)).stats
            rows.append((stats.regions_retrieved, stats.candidate_images))
        retrieved = [r for r, _ in rows]
        candidates = [c for _, c in rows]
        assert retrieved == sorted(retrieved)
        assert candidates == sorted(candidates)
        assert candidates[-1] > candidates[0]


class TestScaleAndTranslation:
    def _distractors(self):
        return [render_scene(label, seed=1000 + i, name=f"d-{label}")
                for i, label in enumerate(("night_sky", "ocean", "desert",
                                           "brick_wall"))]

    def test_scaled_and_moved_object_retrieved(self, flower_factory):
        """Index a flower scene; query with the same object rescaled
        and moved — it must outrank all distractors (Section 1's
        Figure 1 scenario)."""
        db = WalrusDatabase(PARAMS)
        db.add_images([
            flower_factory(96, 128, cy=30, cx=36, radius=26,
                           name="target"),
            *self._distractors(),
        ])
        query = flower_factory(96, 128, cy=64, cx=96, radius=14,
                               name="query")
        result = db.query(query, QueryParameters(epsilon=0.085))
        assert result.names()[0] == "target"

    def test_resolution_change_tolerated(self, flower_factory):
        """The same scene at a different resolution still matches:
        wavelet signatures are resolution-independent averages."""
        db = WalrusDatabase(PARAMS)
        scene = flower_factory(128, 128, cy=64, cx=64, radius=34,
                               name="target")
        db.add_images([scene, *self._distractors()])
        smaller = scene.resize(96, 96).with_name("query")
        result = db.query(smaller, QueryParameters(epsilon=0.085))
        assert result.names()[0] == "target"


class TestColorSpaces:
    @pytest.mark.parametrize("space", ["ycc", "rgb", "yiq", "hsv"])
    def test_pipeline_runs_in_every_space(self, space, flower_factory):
        db = WalrusDatabase(PARAMS.with_(color_space=space))
        db.add_images([
            flower_factory(64, 96, radius=18, name="flower"),
            render_scene("night_sky", seed=12, name="dark"),
        ])
        result = db.query(flower_factory(64, 96, cy=28, cx=66, radius=13))
        assert result.names()
        assert result.names()[0] == "flower"


class TestMatchingModes:
    def test_quick_vs_greedy_ranking_consistency(self, database):
        """Greedy may lower similarities but the top match for a clean
        query stays in the same class."""
        query = render_scene("sunset", seed=888)
        quick = database.query(query, QueryParameters(epsilon=0.085,
                                                      matching="quick"))
        greedy = database.query(query, QueryParameters(epsilon=0.085,
                                                       matching="greedy"))
        if quick.names() and greedy.names():
            assert greedy.names()[0].split("-")[0] == \
                quick.names()[0].split("-")[0]


class TestDeterminism:
    def test_same_build_same_results(self, dataset):
        query = render_scene("flowers", seed=424242)
        results = []
        for _ in range(2):
            db = WalrusDatabase(PARAMS)
            db.add_images(dataset.images[:20])
            result = db.query(query, QueryParameters(epsilon=0.085))
            results.append([(m.name, round(m.similarity, 12))
                            for m in result])
        assert results[0] == results[1]
