"""Tests for the exception hierarchy (catchability contracts)."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ClusteringError,
    CodecError,
    DatabaseError,
    DatasetError,
    ImageFormatError,
    ParameterError,
    SpatialIndexError,
    StorageError,
    WalrusError,
    WaveletError,
)

ALL_ERRORS = [ClusteringError, CodecError, DatabaseError, DatasetError,
              ImageFormatError, ParameterError, SpatialIndexError,
              StorageError, WaveletError]


class TestHierarchy:
    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_all_derive_from_walrus_error(self, error_cls):
        assert issubclass(error_cls, WalrusError)

    def test_parameter_error_is_value_error(self):
        """Callers using stdlib idioms still catch bad parameters."""
        assert issubclass(ParameterError, ValueError)

    def test_codec_error_is_image_format_error(self):
        assert issubclass(CodecError, ImageFormatError)

    def test_storage_error_is_index_error(self):
        assert issubclass(StorageError, SpatialIndexError)

    def test_catching_base_catches_library_failures(self):
        from repro.core.parameters import ExtractionParameters

        with pytest.raises(WalrusError):
            ExtractionParameters(stride=3)

    def test_wavelet_error_catchable_as_value_error(self):
        from repro.wavelets.haar import haar_1d

        with pytest.raises(ValueError):
            haar_1d([1.0, 2.0, 3.0])
