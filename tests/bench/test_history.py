"""The benchmark-history harness: entry schema, comparison, CLI gate.

``compare_entries`` is tested directly on synthetic entries (exact
count checks, fingerprint-gated timing tolerance, schema/config
mismatch notes), then the CLI is driven end to end on a tiny workload:
two runs must self-compare clean, and injected count drift must flip
the exit status to nonzero.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from tools.bench.history import (SCHEMA_VERSION, TIMING_FLOOR_SECONDS,
                                 build_entry, compare_entries,
                                 history_entries, machine_fingerprint, main)


def make_entry() -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {"images": 4, "seed": 1, "epsilon": 0.085, "workers": 1},
        "machine": {"system": "Linux", "machine": "x86_64",
                    "python": "3.12.0", "cpus": 8},
        "counts": {"regions": 50, "cold_index_node_reads": 120,
                   "cold_candidate_images": 3},
        "timings": {"ingest_seconds": 2.0, "cold_query_seconds": 0.4,
                    "warm_probe_cache_hit_rate": 1.0},
    }


class TestCompareEntries:
    def test_identical_entries_compare_clean(self):
        entry = make_entry()
        regressions, notes = compare_entries(entry, copy.deepcopy(entry))
        assert regressions == []
        assert notes == []

    def test_count_drift_is_a_regression(self):
        current = make_entry()
        current["counts"]["cold_index_node_reads"] += 1
        regressions, _ = compare_entries(make_entry(), current)
        assert len(regressions) == 1
        assert "cold_index_node_reads" in regressions[0]

    def test_config_change_skips_count_comparison(self):
        current = make_entry()
        current["config"]["images"] = 8
        current["counts"]["cold_index_node_reads"] = 999
        regressions, notes = compare_entries(make_entry(), current)
        assert regressions == []
        assert any("config changed" in note for note in notes)

    def test_schema_change_skips_everything(self):
        current = make_entry()
        current["schema_version"] = SCHEMA_VERSION + 1
        current["counts"]["regions"] = 999
        current["timings"]["ingest_seconds"] = 100.0
        regressions, notes = compare_entries(make_entry(), current)
        assert regressions == []
        assert any("schema changed" in note for note in notes)

    def test_timing_regression_beyond_tolerance(self):
        current = make_entry()
        current["timings"]["ingest_seconds"] = 4.5  # > 2x baseline of 2.0
        regressions, _ = compare_entries(make_entry(), current,
                                         tolerance=1.0)
        assert len(regressions) == 1
        assert "ingest_seconds" in regressions[0]

    def test_timing_within_tolerance_passes(self):
        current = make_entry()
        current["timings"]["ingest_seconds"] = 3.9  # < 2x baseline
        regressions, _ = compare_entries(make_entry(), current,
                                         tolerance=1.0)
        assert regressions == []

    def test_different_machine_skips_timings(self):
        current = make_entry()
        current["machine"] = dict(current["machine"], cpus=2)
        current["timings"]["ingest_seconds"] = 100.0
        regressions, notes = compare_entries(make_entry(), current)
        assert regressions == []
        assert any("machine fingerprint" in note for note in notes)

    def test_sub_floor_timings_are_noise(self):
        previous = make_entry()
        previous["timings"]["cold_query_seconds"] = \
            TIMING_FLOOR_SECONDS / 5
        current = copy.deepcopy(previous)
        current["timings"]["cold_query_seconds"] = \
            TIMING_FLOOR_SECONDS / 2  # 2.5x, but microscopic
        regressions, _ = compare_entries(previous, current, tolerance=0.1)
        assert regressions == []

    def test_non_seconds_keys_never_compared_as_timings(self):
        current = make_entry()
        current["timings"]["warm_probe_cache_hit_rate"] = 0.0
        regressions, _ = compare_entries(make_entry(), current)
        assert regressions == []


class TestEntryShape:
    def test_build_entry_schema(self):
        entry = build_entry(images=4, seed=7, epsilon=0.085, workers=1)
        assert entry["schema_version"] == SCHEMA_VERSION
        assert entry["config"] == {"images": 4, "seed": 7,
                                   "epsilon": 0.085, "workers": 1}
        assert entry["machine"] == machine_fingerprint()
        assert entry["counts"]["images"] == 4
        assert entry["counts"]["regions"] > 0
        assert entry["counts"]["cold_index_node_reads"] > 0
        assert entry["counts"]["warm_signature_cache_hit"] == 1
        assert entry["timings"]["ingest_seconds"] > 0
        assert entry["timings"]["warm_probe_cache_hit_rate"] == 1.0
        assert json.loads(json.dumps(entry)) == entry

    def test_build_entry_is_deterministic_on_counts(self):
        first = build_entry(images=4, seed=7, epsilon=0.085, workers=1)
        second = build_entry(images=4, seed=7, epsilon=0.085, workers=1)
        assert first["counts"] == second["counts"]


class TestHistoryDirectory:
    def test_entries_sorted_by_number(self, tmp_path):
        for number in (3, 1, 10):
            (tmp_path / f"BENCH_{number}.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("")
        found = history_entries(str(tmp_path))
        assert [number for number, _ in found] == [1, 3, 10]


class TestCliGate:
    def test_two_runs_compare_clean_then_drift_fails(self, tmp_path, capsys):
        directory = str(tmp_path)
        argv = ["--dir", directory, "--images", "4", "--seed", "7"]
        assert main(argv) == 0
        assert main(argv) == 0
        assert os.path.exists(os.path.join(directory, "BENCH_2.json"))
        assert "clean" in capsys.readouterr().out
        # Tamper with the latest entry's deterministic counts: the next
        # run must flag the drift and exit nonzero.
        path = os.path.join(directory, "BENCH_2.json")
        with open(path, encoding="utf-8") as stream:
            entry = json.load(stream)
        entry["counts"]["cold_index_node_reads"] += 5
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(entry, stream)
        assert main(argv) == 1
        assert "cold_index_node_reads" in capsys.readouterr().err

    def test_usage_errors_exit_two(self, tmp_path):
        assert main(["--dir", str(tmp_path / "missing")]) == 2
        assert main(["--dir", str(tmp_path), "--images", "0"]) == 2
