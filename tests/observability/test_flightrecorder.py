"""Flight recorder: tail retention, eviction order, concurrency."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import DeadlineExceededError, ObservabilityError
from repro.observability import FlightRecorder, Tracer


def run_trace(tracer: Tracer, name: str, *, fail: str | None = None) -> None:
    """Complete one root span; ``fail`` raises inside it."""
    if fail == "deadline":
        with pytest.raises(DeadlineExceededError):
            with tracer.span(name):
                raise DeadlineExceededError(
                    "late", budget_seconds=0.1, elapsed_seconds=0.2,
                    context="probe")
    elif fail == "error":
        with pytest.raises(RuntimeError):
            with tracer.span(name):
                raise RuntimeError("boom")
    else:
        with tracer.span(name):
            pass


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_slow_threshold_must_be_non_negative(self):
        with pytest.raises(ObservabilityError, match="slow_seconds"):
            FlightRecorder(slow_seconds=-1.0)


class TestRetention:
    def test_sampled_traces_are_retained(self):
        recorder = FlightRecorder(capacity=4, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=1.0, recorder=recorder)
        run_trace(tracer, "op")
        assert len(recorder) == 1
        assert recorder.segments()[0][1] == "sampled"

    def test_unsampled_clean_traces_are_dropped(self):
        recorder = FlightRecorder(capacity=4, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=0.0, recorder=recorder)
        run_trace(tracer, "op")
        assert len(recorder) == 0
        assert recorder.dump()["dropped_total"] == 1

    def test_deadline_force_retained_at_zero_sampling(self):
        recorder = FlightRecorder(capacity=4, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=0.0, recorder=recorder)
        run_trace(tracer, "op", fail="deadline")
        assert len(recorder) == 1
        segment, reason = recorder.segments()[0]
        assert reason == "deadline"
        assert segment.sampled is False
        assert segment.root is not None
        assert segment.root.status == "deadline_exceeded"

    def test_error_force_retained_at_zero_sampling(self):
        recorder = FlightRecorder(capacity=4, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=0.0, recorder=recorder)
        run_trace(tracer, "op", fail="error")
        assert recorder.segments()[0][1] == "error"

    def test_slow_force_retained_at_zero_sampling(self):
        recorder = FlightRecorder(capacity=4, slow_seconds=0.0)
        tracer = Tracer(enabled=True, sample_rate=0.0, recorder=recorder)
        run_trace(tracer, "op")  # slow_seconds=0: everything is "slow"
        assert recorder.segments()[0][1] == "slow"

    def test_force_reason_outranks_sampled(self):
        recorder = FlightRecorder(capacity=4, slow_seconds=0.0)
        tracer = Tracer(enabled=True, sample_rate=1.0, recorder=recorder)
        run_trace(tracer, "op", fail="deadline")
        assert recorder.segments()[0][1] == "deadline"


class TestEviction:
    def test_fifo_eviction_preserves_order(self):
        recorder = FlightRecorder(capacity=3, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=1.0, seed=5,
                        recorder=recorder)
        for index in range(5):
            run_trace(tracer, f"op{index}")
        kept = [segment.root.name
                for segment, _ in recorder.segments()]
        assert kept == ["op2", "op3", "op4"]
        dump = recorder.dump()
        assert dump["recorded_total"] == 5
        assert dump["evicted_total"] == 2
        assert [trace["spans"][0]["name"] for trace in dump["traces"]] \
            == ["op2", "op3", "op4"]

    def test_clear_keeps_counters(self):
        recorder = FlightRecorder(capacity=4, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=1.0, recorder=recorder)
        run_trace(tracer, "op")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dump()["recorded_total"] == 1


class TestDump:
    def test_segments_sharing_trace_id_merge(self):
        recorder = FlightRecorder(capacity=8, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=1.0, recorder=recorder)
        from repro.observability import parse_traceparent
        remote = parse_traceparent("00-" + "a" * 32 + "-" + "b" * 16
                                   + "-01")
        with tracer.span("client", parent=remote):
            pass
        with tracer.span("server", parent=remote):
            pass
        dump = recorder.dump()
        assert len(dump["traces"]) == 1
        trace = dump["traces"][0]
        assert trace["trace_id"] == "a" * 32
        assert trace["retained"] == ["sampled"]  # deduplicated
        assert [span["name"] for span in trace["spans"]] \
            == ["client", "server"]

    def test_dump_is_json_ready(self):
        import json
        recorder = FlightRecorder(capacity=2, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=1.0, recorder=recorder)
        run_trace(tracer, "op", fail="error")
        payload = json.loads(json.dumps(recorder.dump()))
        assert payload["capacity"] == 2
        assert payload["traces"][0]["retained"] == ["error"]


class TestConcurrency:
    def test_force_retention_survives_concurrent_writers(self):
        """Many threads completing traces at 0% sampling: every
        deadline/error trace is retained (modulo ring eviction),
        counters stay consistent, and nothing crashes."""
        recorder = FlightRecorder(capacity=1024, slow_seconds=60.0)
        tracer = Tracer(enabled=True, sample_rate=0.0, seed=9,
                        recorder=recorder)
        per_thread = 25
        threads = 8
        barrier = threading.Barrier(threads)

        def worker(worker_id: int) -> None:
            barrier.wait()
            for index in range(per_thread):
                fail = ("deadline" if index % 5 == 0 else
                        "error" if index % 5 == 1 else None)
                run_trace(tracer, f"w{worker_id}.{index}", fail=fail)

        pool = [threading.Thread(target=worker, args=(n,))
                for n in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        forced_per_thread = sum(1 for index in range(per_thread)
                                if index % 5 in (0, 1))
        expected = threads * forced_per_thread
        dump = recorder.dump()
        assert dump["recorded_total"] == expected
        assert dump["evicted_total"] == 0
        assert dump["dropped_total"] == threads * per_thread - expected
        assert len(recorder) == expected
        reasons = {reason for _, reason in recorder.segments()}
        assert reasons == {"deadline", "error"}

    def test_concurrent_eviction_respects_capacity(self):
        recorder = FlightRecorder(capacity=16, slow_seconds=0.0)
        tracer = Tracer(enabled=True, sample_rate=0.0, seed=9,
                        recorder=recorder)
        threads = 8

        def worker() -> None:
            for _ in range(50):
                run_trace(tracer, "op")  # slow_seconds=0 retains all

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        dump = recorder.dump()
        assert len(recorder) == 16
        assert dump["recorded_total"] == threads * 50
        assert dump["evicted_total"] == threads * 50 - 16
