"""QueryReport serialization: to_dict/from_dict round-trip, rendering.

The dict payload is the ``query`` event-log body and the shape behind
``walrus stats --format=json``, so the round-trip has to be exact for
counts and :meth:`render` has to degrade gracefully when a rebuilt
report carries partial (or no) stage timings.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ObservabilityError
from repro.observability.report import (CANONICAL_STAGES, ProbeCounts,
                                        QueryReport)
from repro.observability.tracing import StageTiming


def make_report(stages=None) -> QueryReport:
    if stages is None:
        stages = tuple(StageTiming(name, 0.010 * (index + 1))
                       for index, name in enumerate(CANONICAL_STAGES))
    return QueryReport(
        query_regions=7,
        signature_cache_hit=True,
        probe=ProbeCounts(probes_executed=5, probe_cache_hits=2,
                          probe_cache_misses=5, node_reads=31,
                          pairs_probed=40, pairs_refined_out=4),
        candidate_images=12,
        matched_images=6,
        returned_images=5,
        stages=tuple(stages),
        total_seconds=0.125,
    )


class TestRoundTrip:
    def test_full_report_round_trips_exactly(self):
        report = make_report()
        rebuilt = QueryReport.from_dict(report.to_dict())
        assert rebuilt == report

    def test_payload_is_json_serializable(self):
        payload = make_report().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_round_trip_through_json_text(self):
        report = make_report()
        rebuilt = QueryReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert rebuilt == report
        assert rebuilt.counts() == report.counts()

    def test_probe_counts_round_trip(self):
        probe = ProbeCounts(1, 2, 3, 4, 5, 6)
        assert ProbeCounts.from_dict(probe.to_dict()) == probe

    def test_stages_optional_in_payload(self):
        payload = make_report().to_dict()
        del payload["stages"]
        rebuilt = QueryReport.from_dict(payload)
        assert rebuilt.stages == ()

    def test_partial_stages_survive(self):
        report = make_report(stages=(StageTiming("probe", 0.02),))
        rebuilt = QueryReport.from_dict(report.to_dict())
        assert rebuilt.stages == (StageTiming("probe", 0.02),)


class TestValidation:
    @pytest.mark.parametrize("name", ["query_regions", "candidate_images",
                                      "matched_images", "returned_images"])
    def test_non_integer_count_rejected(self, name):
        payload = make_report().to_dict()
        payload[name] = "7"
        with pytest.raises(ObservabilityError, match=name):
            QueryReport.from_dict(payload)

    def test_boolean_count_rejected(self):
        payload = make_report().to_dict()
        payload["query_regions"] = True
        with pytest.raises(ObservabilityError):
            QueryReport.from_dict(payload)

    def test_missing_probe_rejected(self):
        payload = make_report().to_dict()
        del payload["probe"]
        with pytest.raises(ObservabilityError, match="probe"):
            QueryReport.from_dict(payload)

    def test_malformed_probe_field_rejected(self):
        payload = make_report().to_dict()
        payload["probe"]["node_reads"] = 1.5
        with pytest.raises(ObservabilityError, match="node_reads"):
            QueryReport.from_dict(payload)

    def test_malformed_stage_row_rejected(self):
        payload = make_report().to_dict()
        payload["stages"] = [{"seconds": 0.5}]
        with pytest.raises(ObservabilityError, match="stage row"):
            QueryReport.from_dict(payload)


class TestRenderDegradation:
    def test_full_report_shows_canonical_timing_line(self):
        text = make_report().render()
        assert "QUERY PLAN (walrus)" in text
        timing = next(line for line in text.splitlines()
                      if line.startswith("  timing:"))
        positions = [timing.index(name) for name in CANONICAL_STAGES]
        assert positions == sorted(positions)
        assert "total 125.0ms" in timing

    def test_no_stages_omits_timing_line(self):
        text = make_report(stages=()).render()
        assert "timing:" not in text
        # The funnel lines still render in full.
        assert "7 query regions" in text
        assert "12 candidate images -> 6 over tau -> 5 returned" in text

    def test_partial_stages_render_only_recorded_names(self):
        text = make_report(stages=(StageTiming("probe", 0.02),)).render()
        timing = next(line for line in text.splitlines()
                      if line.startswith("  timing:"))
        assert "probe 20.0ms" in timing
        assert "extract" not in timing
        assert "match" not in timing

    def test_unknown_extra_stage_renders_after_canonical(self):
        text = make_report(stages=(StageTiming("warmup", 0.001),
                                   StageTiming("probe", 0.02))).render()
        timing = next(line for line in text.splitlines()
                      if line.startswith("  timing:"))
        assert timing.index("probe") < timing.index("warmup")

    def test_rebuilt_event_row_renders(self):
        payload = make_report().to_dict()
        payload["stages"] = []
        rebuilt = QueryReport.from_dict(payload)
        assert rebuilt.render().startswith("QUERY PLAN")
