"""The structured event log: emission, thresholds, rotation, no-op mode.

Covers the tentpole guarantees from the telemetry work: JSON-lines
schema validation for every event type, the slow-query threshold
(``slow_query`` emitted in addition to ``query``), size-capped
rotation, and — most load-bearing — that a **disabled** log is a true
no-op: zero records reach any handler (verified with a spy handler)
and the hot paths never build payloads.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.exceptions import ObservabilityError
from repro.observability.events import (DEFAULT_SLOW_QUERY_SECONDS,
                                        ENVELOPE_KEYS, EVENT_TYPES, EventLog,
                                        disable_events, enable_events,
                                        get_events, parse_event_line,
                                        set_events)
from tests.conftest import make_flower_image


class SpyHandler(logging.Handler):
    """In-memory sink counting every record that reaches a handler."""

    def __init__(self) -> None:
        super().__init__()
        self.records: list[str] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record.getMessage())


@pytest.fixture
def spy_log():
    """An enabled EventLog writing into a SpyHandler, swapped in
    process-wide and restored afterwards."""
    log = EventLog(enabled=True)
    spy = SpyHandler()
    log.attach_handler(spy)
    previous = set_events(log)
    yield log, spy
    set_events(previous)
    log.close()


class TestEmission:
    def test_emit_writes_one_json_line(self, spy_log):
        log, spy = spy_log
        log.emit("query", {"candidate_images": 3})
        assert len(spy.records) == 1
        record = parse_event_line(spy.records[0])
        assert record["event"] == "query"
        assert record["candidate_images"] == 3

    def test_sequence_is_monotonic_across_instances(self, spy_log):
        log, spy = spy_log
        log.emit("ingest", {"images": 1})
        other = EventLog(enabled=True)
        other_spy = SpyHandler()
        other.attach_handler(other_spy)
        other.emit("ingest", {"images": 2})
        log.emit("ingest", {"images": 3})
        sequences = [parse_event_line(line)["seq"]
                     for line in spy.records + other_spy.records]
        assert len(set(sequences)) == 3
        assert sorted(sequences) == [min(sequences), min(sequences) + 1,
                                     min(sequences) + 2]
        other.close()

    def test_unknown_event_type_rejected(self, spy_log):
        log, _ = spy_log
        with pytest.raises(ObservabilityError, match="unknown event type"):
            log.emit("mystery", {})

    def test_envelope_collision_rejected(self, spy_log):
        log, _ = spy_log
        for key in ENVELOPE_KEYS:
            with pytest.raises(ObservabilityError, match="envelope"):
                log.emit("query", {key: 1})

    def test_unserializable_payload_rejected(self, spy_log):
        log, spy = spy_log
        with pytest.raises(ObservabilityError, match="JSON"):
            log.emit("query", {"bad": object()})
        assert spy.records == []

    def test_negative_slow_query_threshold_rejected(self):
        with pytest.raises(ObservabilityError):
            EventLog(slow_query_seconds=-0.5)


class TestDisabledIsTrueNoOp:
    def test_disabled_emit_reaches_no_handler(self):
        log = EventLog(enabled=False)
        spy = SpyHandler()
        log.attach_handler(spy)
        log.emit("query", {"candidate_images": 1})
        assert spy.records == []
        log.close()

    def test_disabled_emit_skips_serialization(self):
        # emit() must return before touching the payload at all: an
        # unserializable payload does not raise while disabled.
        log = EventLog(enabled=False)
        log.emit("query", {"bad": object()})
        log.close()

    def test_fresh_instances_start_disabled(self):
        assert EventLog().enabled is False
        assert isinstance(get_events(), EventLog)

    def test_disabled_workload_emits_nothing(self, tmp_path):
        # End to end: ingest + query with the default (disabled) log
        # swapped for a spy-backed disabled one — zero records.
        log = EventLog(enabled=False)
        spy = SpyHandler()
        log.attach_handler(spy)
        previous = set_events(log)
        try:
            database = WalrusDatabase()
            database.add_image(make_flower_image(name="img-0"))
            database.query(make_flower_image(name="img-1"), QueryParameters())
        finally:
            set_events(previous)
            log.close()
        assert spy.records == []


class TestSlowQueryThreshold:
    def _query_events(self, spy: SpyHandler) -> list[str]:
        return [parse_event_line(line)["event"] for line in spy.records
                if parse_event_line(line)["event"] in ("query",
                                                       "slow_query")]

    def test_every_query_crosses_a_zero_threshold(self):
        log = EventLog(enabled=True, slow_query_seconds=0.0)
        spy = SpyHandler()
        log.attach_handler(spy)
        previous = set_events(log)
        try:
            database = WalrusDatabase()
            database.add_image(make_flower_image(name="img-0"))
            database.query(make_flower_image(name="img-1"), QueryParameters())
        finally:
            set_events(previous)
            log.close()
        kinds = self._query_events(spy)
        assert kinds.count("query") == 1
        assert kinds.count("slow_query") == 1
        slow = next(parse_event_line(line) for line in spy.records
                    if parse_event_line(line)["event"] == "slow_query")
        assert slow["threshold_seconds"] == 0.0
        assert "candidate_images" in slow

    def test_fast_query_stays_below_default_threshold(self):
        log = EventLog(enabled=True)  # default 1.0 s threshold
        assert log.slow_query_seconds == DEFAULT_SLOW_QUERY_SECONDS
        spy = SpyHandler()
        log.attach_handler(spy)
        previous = set_events(log)
        try:
            database = WalrusDatabase()
            database.add_image(make_flower_image(name="img-0"))
            database.query(make_flower_image(name="img-1"), QueryParameters())
        finally:
            set_events(previous)
            log.close()
        kinds = self._query_events(spy)
        assert kinds.count("query") == 1
        assert kinds.count("slow_query") == 0


class TestRotation:
    def test_rotates_at_size_cap(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(enabled=True)
        log.open(path, max_bytes=512, backup_count=2)
        for index in range(40):
            log.emit("ingest", {"images": index, "padding": "x" * 40})
        log.close()
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        assert os.path.getsize(path) <= 512
        # Every row in every generation is a valid, ordered event.
        sequences = []
        for name in (path + ".2", path + ".1", path):
            if not os.path.exists(name):
                continue
            with open(name, encoding="utf-8") as stream:
                for line in stream:
                    sequences.append(parse_event_line(line)["seq"])
        assert sequences == sorted(sequences)

    def test_open_is_lazy(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog()
        log.open(path)
        assert not os.path.exists(path)  # delay=True: no file until emit
        log.emit("ingest", {"images": 1})
        log.close()
        assert os.path.exists(path)

    def test_bad_rotation_policy_rejected(self, tmp_path):
        log = EventLog()
        with pytest.raises(ObservabilityError):
            log.open(str(tmp_path / "x.jsonl"), max_bytes=-1)


class TestModuleSwitches:
    def test_enable_disable_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = enable_events(path, slow_query_seconds=0.25)
        try:
            assert log is get_events()
            assert log.enabled
            assert log.slow_query_seconds == 0.25
            log.emit("verify", {"ok": True})
        finally:
            assert disable_events() is log
            assert not log.enabled
            log.close()
            log.slow_query_seconds = DEFAULT_SLOW_QUERY_SECONDS
        with open(path, encoding="utf-8") as stream:
            rows = [parse_event_line(line) for line in stream]
        assert [row["event"] for row in rows] == ["verify"]


class TestSchemaValidation:
    def test_round_trips_every_event_type(self):
        for index, event in enumerate(sorted(EVENT_TYPES)):
            line = json.dumps({"event": event, "ts": 1.5,
                               "seq": index + 1, "detail": event})
            record = parse_event_line(line)
            assert record["event"] == event
            assert record["detail"] == event

    @pytest.mark.parametrize("line, match", [
        ("not json", "not valid JSON"),
        ("[1, 2]", "not a JSON object"),
        ('{"ts": 1.0, "seq": 1}', "missing 'event'"),
        ('{"event": "query", "seq": 1}', "missing 'ts'"),
        ('{"event": "query", "ts": 1.0}', "missing 'seq'"),
        ('{"event": "nope", "ts": 1.0, "seq": 1}', "unknown event type"),
        ('{"event": "query", "ts": 1.0, "seq": 0}', "positive integer"),
        ('{"event": "query", "ts": 1.0, "seq": true}', "positive integer"),
        ('{"event": "query", "ts": "x", "seq": 1}', "must be a number"),
    ])
    def test_rejects_malformed_rows(self, line, match):
        with pytest.raises(ObservabilityError, match=match):
            parse_event_line(line)


class TestLibraryEmission:
    """The wired call sites: ingest, extraction, verify, fsck."""

    def _capture(self):
        log = EventLog(enabled=True, slow_query_seconds=1e9)
        spy = SpyHandler()
        log.attach_handler(spy)
        return log, spy

    def test_ingest_and_query_events(self):
        log, spy = self._capture()
        previous = set_events(log)
        try:
            database = WalrusDatabase()
            database.add_images([make_flower_image(name="img-1"),
                                 make_flower_image(name="img-2")], bulk=True)
            database.add_image(make_flower_image(name="img-0"))
            database.query(make_flower_image(name="img-3"), QueryParameters())
        finally:
            set_events(previous)
            log.close()
        rows = [parse_event_line(line) for line in spy.records]
        kinds = [row["event"] for row in rows]
        assert kinds.count("ingest") == 2
        assert kinds.count("query") == 1
        batch, single = [row for row in rows if row["event"] == "ingest"]
        assert batch["images"] == 2 and batch["bulk"] is True
        assert single["images"] == 1 and single["bulk"] is False
        assert single["total_images"] == 3
        query = next(row for row in rows if row["event"] == "query")
        for key in ("query_regions", "candidate_images", "matched_images",
                    "returned_images", "probe", "stages", "total_seconds"):
            assert key in query
        assert query["probe"]["node_reads"] >= 0

    def test_verify_event_has_summary_fields(self):
        log, spy = self._capture()
        previous = set_events(log)
        try:
            database = WalrusDatabase()
            database.add_image(make_flower_image(name="img-0"))
            summary = database.index.verify_summary()
        finally:
            set_events(previous)
            log.close()
        assert summary["ok"] is True
        rows = [parse_event_line(line) for line in spy.records
                if parse_event_line(line)["event"] == "verify"]
        assert len(rows) == 1
        for key in ("ok", "issues", "nodes_walked", "leaf_entries",
                    "recorded_size"):
            assert key in rows[0]
