"""Concurrency hammer: metrics and event sequencing under N threads.

The serve daemon makes the observability layer genuinely concurrent
for the first time — every handler thread increments counters,
observes histograms and emits events.  These tests drive that layer
from many threads at once and assert *exact* totals (a single lost
update fails the count) and *unique, gap-free* event sequence
numbers.
"""

from __future__ import annotations

import json
import threading

from repro.observability.events import EventLog, parse_event_line
from repro.observability.registry import MetricsRegistry

THREADS = 8
ITERATIONS = 500


def _run_threads(work) -> None:
    barrier = threading.Barrier(THREADS)

    def body(index: int) -> None:
        barrier.wait(timeout=30.0)
        work(index)

    threads = [threading.Thread(target=body, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads)


class TestMetricsUnderContention:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry(enabled=True)
        _run_threads(lambda i: [registry.counter("hammer.hits").inc()
                                for _ in range(ITERATIONS)])
        assert registry.counter("hammer.hits").value \
            == THREADS * ITERATIONS

    def test_histogram_observations_are_exact(self):
        registry = MetricsRegistry(enabled=True)

        def work(index: int) -> None:
            histogram = registry.histogram("hammer.seconds")
            for step in range(ITERATIONS):
                histogram.observe(float(index * ITERATIONS + step))

        _run_threads(work)
        histogram = registry.histogram("hammer.seconds")
        total_points = THREADS * ITERATIONS
        assert histogram.count == total_points
        # Sum of 0..N-1: any lost or double-counted observe shifts it.
        assert histogram.total == total_points * (total_points - 1) / 2
        assert histogram.minimum == 0.0
        assert histogram.maximum == float(total_points - 1)

    def test_racing_instrument_creation_yields_one_instrument(self):
        registry = MetricsRegistry(enabled=True)
        instruments: list[object] = []
        lock = threading.Lock()

        def work(index: int) -> None:
            counter = registry.counter("hammer.shared")
            with lock:
                instruments.append(counter)
            counter.inc()

        _run_threads(work)
        assert len(set(id(obj) for obj in instruments)) == 1
        assert registry.counter("hammer.shared").value == THREADS

    def test_gauge_last_write_wins_without_corruption(self):
        registry = MetricsRegistry(enabled=True)
        _run_threads(lambda i: [registry.gauge("hammer.level").set(float(i))
                                for _ in range(ITERATIONS)])
        assert registry.gauge("hammer.level").value \
            in {float(i) for i in range(THREADS)}


class TestEventSequencing:
    def test_seqs_unique_and_gap_free_across_threads(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(enabled=True, name="hammer-events")
        log.open(path)
        try:
            _run_threads(lambda i: [
                log.emit("fault", {"kind": "hammer", "thread": i,
                                   "step": step})
                for step in range(ITERATIONS)])
        finally:
            log.close()
        seqs = []
        with open(path, encoding="utf-8") as stream:
            for line in stream:
                record = parse_event_line(line)
                seqs.append(record["seq"])
        expected = THREADS * ITERATIONS
        assert len(seqs) == expected
        assert len(set(seqs)) == expected, "duplicate seq issued"
        # The counter is process-wide (earlier tests may have advanced
        # it), so assert contiguity relative to our first number.
        first = min(seqs)
        assert sorted(seqs) == list(range(first, first + expected)), \
            "sequence numbers must be gap-free"

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(enabled=True, name="hammer-json")
        log.open(path)
        try:
            _run_threads(lambda i: [
                log.emit("fault", {"kind": "interleave", "thread": i})
                for _ in range(50)])
        finally:
            log.close()
        with open(path, encoding="utf-8") as stream:
            for line in stream:
                record = json.loads(line)
                assert record["event"] == "fault"
