"""Trace/top terminal rendering: span trees, scrape parsing, quantiles."""

from __future__ import annotations

import pytest

from repro.exceptions import ObservabilityError
from repro.observability.traceview import (bucket_pairs, delta_buckets,
                                           find_traces,
                                           parse_prometheus_text,
                                           quantile_from_buckets,
                                           render_span_tree, render_top,
                                           render_trace_list,
                                           trace_summaries)


def make_dump() -> dict:
    """A two-trace flight-recorder dump with fixed times."""
    return {
        "traces": [
            {
                "trace_id": "a" * 32,
                "sampled": True,
                "retained": ["sampled"],
                "spans": [
                    {"name": "probe", "trace_id": "a" * 32,
                     "span_id": "02" * 8, "parent_id": "01" * 8,
                     "start": 0.010, "end": 0.030, "duration": 0.020,
                     "status": "ok", "attributes": {}, "events": []},
                    {"name": "query", "trace_id": "a" * 32,
                     "span_id": "01" * 8, "parent_id": None,
                     "start": 0.000, "end": 0.100, "duration": 0.100,
                     "status": "ok", "attributes": {}, "events": []},
                ],
            },
            {
                "trace_id": "b" * 32,
                "sampled": False,
                "retained": ["deadline"],
                "spans": [
                    {"name": "server.request", "trace_id": "b" * 32,
                     "span_id": "03" * 8, "parent_id": "ee" * 8,
                     "start": 1.0, "end": 3.5, "duration": 2.5,
                     "status": "deadline_exceeded", "attributes": {},
                     "events": []},
                ],
            },
        ],
        "capacity": 64, "slow_seconds": 1.0,
        "recorded_total": 2, "evicted_total": 0, "dropped_total": 5,
    }


class TestSummaries:
    def test_summaries_pick_the_root_span(self):
        first, second = trace_summaries(make_dump())
        assert first["root"] == "query"
        assert first["duration"] == 0.100
        assert first["spans"] == 2
        assert second["root"] == "server.request"
        assert second["status"] == "deadline_exceeded"
        assert second["retained"] == ["deadline"]

    def test_render_trace_list_shape(self):
        text = render_trace_list(make_dump())
        lines = text.splitlines()
        assert lines[0].startswith("TRACE_ID")
        assert "a" * 32 in lines[1] and "100.0ms" in lines[1]
        assert "deadline" in lines[2] and "2.500s" in lines[2]
        assert "2 trace(s)" in lines[-1]
        assert "dropped_total=5" in lines[-1]

    def test_missing_traces_key_raises(self):
        with pytest.raises(ObservabilityError, match="traces"):
            trace_summaries({})

    def test_find_traces_by_prefix(self):
        dump = make_dump()
        assert len(find_traces(dump, "a")) == 1
        assert len(find_traces(dump, "")) == 2
        assert find_traces(dump, "zzz") == []


class TestSpanTree:
    def test_tree_shape_and_self_time(self):
        text = render_span_tree(make_dump()["traces"][0])
        lines = text.splitlines()
        assert lines[0].startswith("trace " + "a" * 32)
        # Root line: full share; self = 100ms - 20ms child = 80%.
        assert "query" in lines[1]
        assert "100.0%" in lines[1]
        assert "self  80.0%" in lines[1]
        assert lines[2].lstrip().startswith("`- probe")
        assert "20.0%" in lines[2]

    def test_orphan_parent_renders_as_root(self):
        text = render_span_tree(make_dump()["traces"][1])
        assert "server.request" in text
        assert "deadline_exceeded" in text

    def test_empty_trace(self):
        text = render_span_tree({"trace_id": "c" * 32, "retained": [],
                                 "spans": []})
        assert "(no spans)" in text


SCRAPE_BEFORE = """\
# TYPE walrus_server_requests_ok counter
walrus_server_requests_ok 100
# TYPE walrus_server_requests_overloaded counter
walrus_server_requests_overloaded 10
# TYPE walrus_server_request_seconds_hist histogram
walrus_server_request_seconds_hist_bucket{le="0.1"} 80
walrus_server_request_seconds_hist_bucket{le="1"} 100
walrus_server_request_seconds_hist_bucket{le="+Inf"} 110
"""

SCRAPE_AFTER = """\
# TYPE walrus_server_requests_ok counter
walrus_server_requests_ok 190
# TYPE walrus_server_requests_overloaded counter
walrus_server_requests_overloaded 20
# TYPE walrus_server_request_seconds_hist histogram
walrus_server_request_seconds_hist_bucket{le="0.1"} 160
walrus_server_request_seconds_hist_bucket{le="1"} 190
walrus_server_request_seconds_hist_bucket{le="+Inf"} 210
# TYPE walrus_cache_probes_hits counter
walrus_cache_probes_hits 30
# TYPE walrus_cache_probes_misses counter
walrus_cache_probes_misses 10
# TYPE walrus_trace_span_seconds_extract_hist histogram
walrus_trace_span_seconds_extract_hist_sum 3.0
# TYPE walrus_trace_span_seconds_probe_hist histogram
walrus_trace_span_seconds_probe_hist_sum 1.0
# TYPE walrus_trace_span_seconds_query_hist histogram
walrus_trace_span_seconds_query_hist_sum 9.0
"""


class TestPrometheusParsing:
    def test_samples_and_labels(self):
        samples = parse_prometheus_text(SCRAPE_BEFORE)
        assert samples["walrus_server_requests_ok"] == 100
        key = 'walrus_server_request_seconds_hist_bucket{le="+Inf"}'
        assert samples[key] == 110

    def test_comment_lines_skipped(self):
        assert parse_prometheus_text("# HELP x y\n# TYPE x counter\n") == {}

    def test_garbage_raises(self):
        with pytest.raises(ObservabilityError, match="unparseable"):
            parse_prometheus_text("<html>not a scrape</html>")

    def test_bucket_pairs_sorted_with_inf(self):
        samples = parse_prometheus_text(SCRAPE_BEFORE)
        pairs = bucket_pairs(samples, "walrus_server_request_seconds_hist")
        assert pairs == [(0.1, 80.0), (1.0, 100.0), (float("inf"), 110.0)]

    def test_delta_buckets(self):
        after = bucket_pairs(parse_prometheus_text(SCRAPE_AFTER),
                             "walrus_server_request_seconds_hist")
        before = bucket_pairs(parse_prometheus_text(SCRAPE_BEFORE),
                              "walrus_server_request_seconds_hist")
        assert delta_buckets(after, before) == \
            [(0.1, 80.0), (1.0, 90.0), (float("inf"), 100.0)]


class TestQuantiles:
    def test_interpolation_inside_bucket(self):
        pairs = [(0.1, 80.0), (1.0, 100.0), (float("inf"), 100.0)]
        # p50: rank 50 of 100 sits inside [0, 0.1): 50/80 of the way.
        assert quantile_from_buckets(pairs, 0.5) == \
            pytest.approx(0.1 * 50 / 80)
        # p90: rank 90, 10 past the 80 in the first bucket, bucket
        # [0.1, 1.0) holds 20 -> 0.1 + 0.9 * 10/20.
        assert quantile_from_buckets(pairs, 0.9) == \
            pytest.approx(0.1 + 0.9 * 10 / 20)

    def test_overflow_clamps_to_last_finite_bound(self):
        pairs = [(0.1, 10.0), (float("inf"), 100.0)]
        assert quantile_from_buckets(pairs, 0.99) == 0.1

    def test_empty_and_zero_ladders(self):
        assert quantile_from_buckets([], 0.5) is None
        assert quantile_from_buckets([(1.0, 0.0)], 0.5) is None


class TestTop:
    def test_delta_rates_and_quantiles(self):
        current = parse_prometheus_text(SCRAPE_AFTER)
        previous = parse_prometheus_text(SCRAPE_BEFORE)
        body = render_top(current, previous, 2.0)
        # 90 ok + 10 overloaded = 100 requests over 2s = 50 qps.
        assert "50.0 qps" in body
        assert "ok 90.0%" in body
        assert "shed 10.0%" in body
        assert "last 2.0s" in body
        assert "p50" in body and "p99" in body

    def test_first_poll_reports_lifetime(self):
        body = render_top(parse_prometheus_text(SCRAPE_BEFORE), None, 2.0)
        assert "since start" in body
        assert "110 req" in body

    def test_cache_ratio_and_stage_split(self):
        body = render_top(parse_prometheus_text(SCRAPE_AFTER), None, 2.0)
        assert "probes 75.0% hit" in body
        # extract 3.0s vs probe 1.0s of the counted stages; the
        # enclosing "query" span is excluded from the split.
        assert "extract 75%" in body
        assert "probe 25%" in body
        assert "query" not in body.splitlines()[-1]

    def test_no_traffic_renders_dashes(self):
        body = render_top({}, {}, 2.0)
        assert "ok -" in body
        assert "p50         -" in body
