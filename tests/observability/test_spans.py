"""Span tracing: traceparent propagation, span trees, sampling,
and the disabled-path overhead guarantee."""

from __future__ import annotations

import sys
from itertools import repeat

import pytest

from repro.exceptions import DeadlineExceededError, ObservabilityError
from repro.observability import (FlightRecorder, Span, Tracer, current_span,
                                 current_traceparent, disable_tracing,
                                 enable_tracing, format_traceparent,
                                 get_tracer, parse_traceparent, set_tracer)
from repro.observability import spans as spans_module


@pytest.fixture
def tracer():
    """An enabled tracer installed process-wide, restored afterwards."""
    built = Tracer(enabled=True, seed=11,
                   recorder=FlightRecorder(capacity=8, slow_seconds=60.0))
    previous = set_tracer(built)
    try:
        yield built
    finally:
        set_tracer(previous)


class TestTraceparent:
    def test_round_trip_sampled(self):
        header = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == "ab" * 16
        assert context.span_id == "cd" * 8
        assert context.sampled is True
        assert format_traceparent(context) == header

    def test_round_trip_unsampled(self):
        header = "00-" + "1" * 32 + "-" + "2" * 16 + "-00"
        context = parse_traceparent(header)
        assert context is not None
        assert context.sampled is False
        assert format_traceparent(context) == header

    def test_uppercase_ids_are_normalized(self):
        context = parse_traceparent("00-" + "AB" * 16 + "-" + "CD" * 8
                                    + "-01")
        assert context is not None
        assert context.trace_id == "ab" * 16

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-xyz-123-01",                              # non-hex ids
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",    # short trace id
        "00-" + "a" * 32 + "-" + "b" * 15 + "-01",    # short span id
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",    # all-zero trace
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",    # all-zero span
        "00-" + "a" * 32 + "-" + "b" * 16 + "-zz",    # bad flags
        "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",    # forbidden version
        "0-" + "a" * 32 + "-" + "b" * 16 + "-01",     # short version
        "00-" + "a" * 32 + "-" + "b" * 16,            # missing flags
        "00-" + "a" * 32 + "-" + "b" * 16 + "-01-x",  # v00 extra field
    ])
    def test_malformed_headers_drop_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_future_version_with_extra_fields_parses(self):
        # Forward compatibility: unknown versions may append fields.
        header = "01-" + "a" * 32 + "-" + "b" * 16 + "-01-future"
        context = parse_traceparent(header)
        assert context is not None
        assert context.sampled is True

    def test_surrounding_whitespace_tolerated(self):
        header = "  00-" + "a" * 32 + "-" + "b" * 16 + "-01  "
        assert parse_traceparent(header) is not None


class TestSpanTree:
    def test_nesting_links_parents(self, tracer):
        with tracer.span("root") as root:
            assert current_span() is root
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert child.parent_id == root.context.span_id
        assert grandchild.parent_id == child.context.span_id
        assert child.context.trace_id == root.context.trace_id
        assert current_span() is None

    def test_attributes_events_and_dict_shape(self, tracer):
        with tracer.span("op") as span:
            span.set_attribute("items", 3)
            span.add_event("checkpoint", index=1)
        payload = span.to_dict()
        assert payload["name"] == "op"
        assert payload["attributes"] == {"items": 3}
        assert payload["events"][0]["name"] == "checkpoint"
        assert payload["events"][0]["index"] == 1
        assert payload["duration"] == payload["end"] - payload["start"]
        assert payload["status"] == "ok"

    def test_error_stamps_status(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("nope")
        assert span.status == "error"
        assert span.attributes["error.type"] == "ValueError"

    def test_deadline_gets_its_own_status(self, tracer):
        with pytest.raises(DeadlineExceededError):
            with tracer.span("slow") as span:
                raise DeadlineExceededError(
                    "too slow", budget_seconds=0.1, elapsed_seconds=0.2,
                    context="probe")
        assert span.status == "deadline_exceeded"

    def test_remote_parent_starts_new_segment_with_same_ids(self, tracer):
        remote = parse_traceparent("00-" + "a" * 32 + "-" + "b" * 16
                                   + "-01")
        with tracer.span("server.request", parent=remote) as span:
            assert span.context.trace_id == "a" * 32
            assert span.parent_id == "b" * 16
            assert span.context.sampled is True

    def test_remote_unsampled_decision_is_honored(self, tracer):
        remote = parse_traceparent("00-" + "a" * 32 + "-" + "b" * 16
                                   + "-00")
        with tracer.span("server.request", parent=remote) as span:
            assert span.context.sampled is False

    def test_current_traceparent_inside_and_outside(self, tracer):
        assert current_traceparent() is None
        with tracer.span("op") as span:
            header = current_traceparent()
            assert header == format_traceparent(span.context)
        assert current_traceparent() is None

    def test_root_exit_hands_segment_to_recorder(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert len(tracer.recorder) == 1
        segment, reason = tracer.recorder.segments()[0]
        assert reason == "sampled"
        assert [span.name for span in segment.spans] == ["child", "root"]
        assert segment.root is not None and segment.root.name == "root"


class TestSampling:
    def test_seeded_decisions_replay(self):
        first = Tracer(enabled=True, sample_rate=0.5, seed=42,
                       recorder=FlightRecorder())
        second = Tracer(enabled=True, sample_rate=0.5, seed=42,
                        recorder=FlightRecorder())

        def decisions(tracer: Tracer) -> list[bool]:
            out = []
            for _ in range(32):
                with tracer.span("op") as span:
                    out.append(span.context.sampled)
            return out

        assert decisions(first) == decisions(second)
        assert True in decisions(first) or False in decisions(first)

    def test_rate_bounds(self):
        always = Tracer(enabled=True, sample_rate=1.0,
                        recorder=FlightRecorder())
        never = Tracer(enabled=True, sample_rate=0.0,
                       recorder=FlightRecorder())
        with always.span("op") as span:
            assert span.context.sampled is True
        with never.span("op") as span:
            assert span.context.sampled is False

    def test_invalid_rate_rejected(self):
        with pytest.raises(ObservabilityError, match="sample_rate"):
            Tracer(sample_rate=1.5)

    def test_enable_disable_tracing_swaps_process_tracer(self):
        previous = get_tracer()
        try:
            tracer = enable_tracing(sample_rate=1.0, seed=3,
                                    slow_seconds=9.0, capacity=4)
            assert get_tracer() is tracer
            assert tracer.enabled
            assert tracer.recorder.capacity == 4
            assert tracer.recorder.slow_seconds == 9.0
            assert disable_tracing() is tracer
            assert not get_tracer().enabled
        finally:
            set_tracer(previous)


class _NoClock:
    """Epoch stand-in that fails the test on any read."""

    @property
    def elapsed(self) -> float:
        raise AssertionError("disabled span path read the clock")


class TestDisabledOverhead:
    """Disabled is a true no-op: no clock reads, no allocations."""

    def test_disabled_span_reads_no_clock(self, monkeypatch):
        tracer = Tracer(enabled=False)
        monkeypatch.setattr(spans_module, "_EPOCH", _NoClock())
        with tracer.span("probe") as span:
            span.set_attribute("ignored", 1)
            span.add_event("ignored")
        assert span.recording is False

    def test_disabled_span_returns_shared_singletons(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is second
        with first as span_a, second as span_b:
            assert span_a is span_b

    def test_disabled_span_allocates_nothing(self):
        tracer = Tracer(enabled=False)
        handle = tracer.span  # bind outside the measured window
        # Warm up: interned strings, code objects, the iterator type.
        for _ in repeat(None, 100):
            with handle("probe"):
                pass
        before = sys.getallocatedblocks()
        for _ in repeat(None, 1000):
            with handle("probe"):
                pass
        after = sys.getallocatedblocks()
        # Zero per-span allocations: any constant jitter comes from
        # the measurement itself, never scales with the 1000 spans.
        assert after - before < 50

    def test_disabled_leaves_no_current_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("probe"):
            assert current_span() is None
