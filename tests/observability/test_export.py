"""Exporters: Prometheus text format 0.0.4 and JSON snapshots.

The golden-fixture test pins the exact rendered text for a known
registry — sanitized names, ``# TYPE`` lines, summary quantile rows —
so any format drift is a visible diff, not a silent scrape failure.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ObservabilityError
from repro.observability import MetricsRegistry
from repro.observability.export import (METRIC_PREFIX, render_chrome_trace,
                                        render_json, render_prometheus,
                                        sanitize_metric_name,
                                        snapshot_payload)


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    registry.counter("query.count").inc(3)
    registry.gauge("cache.signature.hit_rate").set(0.75)
    histogram = registry.histogram("query.seconds")
    histogram.observe(0.25)
    histogram.observe(1.75)
    return registry


GOLDEN = """\
# TYPE walrus_cache_signature_hit_rate gauge
walrus_cache_signature_hit_rate 0.75
# TYPE walrus_query_count counter
walrus_query_count 3
# TYPE walrus_query_seconds summary
walrus_query_seconds{quantile="0"} 0.25
walrus_query_seconds{quantile="1"} 1.75
walrus_query_seconds_sum 2
walrus_query_seconds_count 2
# TYPE walrus_query_seconds_hist histogram
walrus_query_seconds_hist_bucket{le="0.005"} 0
walrus_query_seconds_hist_bucket{le="0.01"} 0
walrus_query_seconds_hist_bucket{le="0.025"} 0
walrus_query_seconds_hist_bucket{le="0.05"} 0
walrus_query_seconds_hist_bucket{le="0.1"} 0
walrus_query_seconds_hist_bucket{le="0.25"} 1
walrus_query_seconds_hist_bucket{le="0.5"} 1
walrus_query_seconds_hist_bucket{le="1"} 1
walrus_query_seconds_hist_bucket{le="2.5"} 2
walrus_query_seconds_hist_bucket{le="5"} 2
walrus_query_seconds_hist_bucket{le="10"} 2
walrus_query_seconds_hist_bucket{le="+Inf"} 2
walrus_query_seconds_hist_sum 2
walrus_query_seconds_hist_count 2
"""


class TestSanitization:
    def test_dots_fold_to_underscores_with_prefix(self):
        assert sanitize_metric_name("query.seconds") == "walrus_query_seconds"

    def test_every_illegal_character_folds(self):
        assert sanitize_metric_name("a.b-c d/e") == "walrus_a_b_c_d_e"

    def test_colon_survives(self):
        assert sanitize_metric_name("ns:metric") == "walrus_ns:metric"

    def test_leading_digit_guarded_without_prefix(self):
        assert sanitize_metric_name("2fast", prefix="").startswith("_")
        assert sanitize_metric_name("", prefix="") == "_"


class TestPrometheusRendering:
    def test_matches_golden_fixture(self):
        assert render_prometheus(make_registry()) == GOLDEN

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry(enabled=True)) == ""

    def test_output_ends_with_newline(self):
        assert render_prometheus(make_registry()).endswith("\n")

    def test_counter_monotonicity_across_renders(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("query.count")
        previous = -1
        for round_number in range(1, 4):
            counter.inc(round_number)
            text = render_prometheus(registry)
            line = next(row for row in text.splitlines()
                        if row.startswith("walrus_query_count "))
            value = int(line.split()[-1])
            assert value > previous
            previous = value

    def test_sanitization_collision_raises(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("query.count").inc()
        registry.counter("query-count").inc()
        with pytest.raises(ObservabilityError, match="collision"):
            render_prometheus(registry)

    def test_prefix_override(self):
        text = render_prometheus(make_registry(), prefix="repro_")
        assert "repro_query_count 3" in text
        assert METRIC_PREFIX not in text

    def test_histogram_quantile_lines_are_min_and_max(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("probe.node_reads")
        for value in (7.0, 2.0, 11.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        assert 'walrus_probe_node_reads{quantile="0"} 2' in text
        assert 'walrus_probe_node_reads{quantile="1"} 11' in text
        assert "walrus_probe_node_reads_sum 20" in text
        assert "walrus_probe_node_reads_count 3" in text


CHROME_DUMP = {
    "traces": [
        {
            "trace_id": "deadbeef" * 4,
            "sampled": True,
            "retained": ["sampled", "slow"],
            "spans": [
                {"name": "probe", "trace_id": "deadbeef" * 4,
                 "span_id": "02" * 8, "parent_id": "01" * 8,
                 "start": 0.0105, "end": 0.0305, "duration": 0.020,
                 "status": "ok", "attributes": {"nodes": 7},
                 "events": [{"name": "cache_miss", "at": 0.012}]},
                {"name": "query", "trace_id": "deadbeef" * 4,
                 "span_id": "01" * 8, "parent_id": None,
                 "start": 0.010, "end": 0.110, "duration": 0.100,
                 "status": "ok", "attributes": {}, "events": []},
            ],
        },
    ],
    "capacity": 64, "slow_seconds": 1.0,
    "recorded_total": 1, "evicted_total": 0, "dropped_total": 0,
}

CHROME_GOLDEN = {
    "traceEvents": [
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": "trace deadbeefdeadbeef [sampled,slow]"}},
        {"name": "probe", "cat": "walrus", "ph": "X", "pid": 1, "tid": 1,
         "ts": 10500.0, "dur": 20000.0,
         "args": {"trace_id": "deadbeef" * 4, "span_id": "02" * 8,
                  "parent_id": "01" * 8, "status": "ok", "nodes": 7}},
        {"name": "cache_miss", "cat": "walrus", "ph": "i", "s": "t",
         "pid": 1, "tid": 1, "ts": 12000.0},
        {"name": "query", "cat": "walrus", "ph": "X", "pid": 1, "tid": 1,
         "ts": 10000.0, "dur": 100000.0,
         "args": {"trace_id": "deadbeef" * 4, "span_id": "01" * 8,
                  "parent_id": None, "status": "ok"}},
    ],
    "displayTimeUnit": "ms",
}


class TestChromeTrace:
    def test_matches_golden_fixture(self):
        assert render_chrome_trace(CHROME_DUMP) == CHROME_GOLDEN

    def test_serializes_and_round_trips(self):
        assert json.loads(json.dumps(render_chrome_trace(CHROME_DUMP))) \
            == CHROME_GOLDEN

    def test_each_trace_gets_its_own_track(self):
        second = dict(CHROME_DUMP["traces"][0], trace_id="feedface" * 4)
        dump = dict(CHROME_DUMP,
                    traces=[CHROME_DUMP["traces"][0], second])
        events = render_chrome_trace(dump)["traceEvents"]
        assert {event["tid"] for event in events} == {1, 2}
        metadata = [event for event in events if event["ph"] == "M"]
        assert metadata[1]["args"]["name"].startswith("trace feedface")

    def test_missing_traces_list_raises(self):
        with pytest.raises(ObservabilityError, match="traces"):
            render_chrome_trace({"capacity": 64})


class TestJsonSnapshot:
    def test_payload_shapes(self):
        payload = snapshot_payload(make_registry())
        assert payload["query.count"] == 3
        assert payload["cache.signature.hit_rate"] == 0.75
        summary = payload["query.seconds"]
        assert summary == {"count": 2, "total": 2.0, "min": 0.25,
                           "max": 1.75, "mean": 1.0}

    def test_render_json_round_trips(self):
        parsed = json.loads(render_json(make_registry()))
        assert parsed == snapshot_payload(make_registry())

    def test_agrees_with_prometheus_rendering(self):
        registry = make_registry()
        payload = snapshot_payload(registry)
        text = render_prometheus(registry)
        for name, value in payload.items():
            exported = sanitize_metric_name(name)
            if isinstance(value, dict):
                assert f"{exported}_count {value['count']}" in text
            else:
                sample = next(row for row in text.splitlines()
                              if row.startswith(f"{exported} "))
                assert float(sample.split()[-1]) == float(value)
