"""Unit tests for the metrics registry's instrument semantics."""

from __future__ import annotations

import pytest

from repro.exceptions import ObservabilityError
from repro.observability import (
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    set_metrics,
)
from repro.observability.registry import _NULL_TIMER, Stopwatch


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("a.b")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("x").inc(-1)

    def test_disabled_inc_is_a_noop(self, registry):
        counter = registry.counter("x")
        registry.disable()
        counter.inc(100)
        assert counter.value == 0
        registry.enable()
        counter.inc()
        assert counter.value == 1


class TestGauge:
    def test_set_and_read(self, registry):
        gauge = registry.gauge("g")
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_disabled_set_is_a_noop(self, registry):
        gauge = registry.gauge("g")
        registry.disable()
        gauge.set(9.0)
        assert gauge.value == 0.0

    def test_callback_gauge_samples_lazily(self, registry):
        source = {"n": 1}
        gauge = registry.gauge("g", fn=lambda: source["n"])
        assert gauge.value == 1.0
        source["n"] = 7
        assert gauge.value == 7.0

    def test_callback_gauge_rejects_set(self, registry):
        gauge = registry.gauge("g", fn=lambda: 0.0)
        with pytest.raises(ObservabilityError):
            gauge.set(1.0)


class TestHistogramAndTimer:
    def test_observe_aggregates(self, registry):
        histogram = registry.histogram("h")
        for value in (2.0, 5.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary.count == 3
        assert summary.total == 10.0
        assert summary.minimum == 2.0
        assert summary.maximum == 5.0
        assert summary.mean == pytest.approx(10.0 / 3)

    def test_empty_summary_mean_is_zero(self, registry):
        assert registry.histogram("h").summary().mean == 0.0

    def test_disabled_observe_is_a_noop(self, registry):
        histogram = registry.histogram("h")
        registry.disable()
        histogram.observe(1.0)
        assert histogram.summary().count == 0

    def test_timer_records_into_histogram(self, registry):
        with registry.timer("t"):
            pass
        summary = registry.histogram("t").summary()
        assert summary.count == 1
        assert summary.total >= 0.0

    def test_disabled_timer_is_shared_null_object(self, registry):
        registry.disable()
        assert registry.timer("t") is _NULL_TIMER
        # and it did not even create the histogram
        assert "t" not in registry


class TestRegistrySemantics:
    def test_kind_collision_raises(self, registry):
        registry.counter("name")
        with pytest.raises(ObservabilityError):
            registry.histogram("name")
        with pytest.raises(ObservabilityError):
            registry.gauge("name")

    def test_empty_name_rejected(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("")

    def test_snapshot_types(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(4.0)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2
        assert snapshot["g"] == 1.5
        assert snapshot["h"].count == 1

    def test_reset_zeroes_but_keeps_registrations(self, registry):
        registry.counter("c").inc(5)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert "c" in registry
        assert registry.counter("c").value == 0
        assert registry.histogram("h").summary().count == 0

    def test_names_sorted(self, registry):
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]


class TestProcessWideRegistry:
    def test_default_registry_starts_disabled(self):
        fresh = MetricsRegistry()
        assert not fresh.enabled

    def test_enable_disable_roundtrip(self):
        previous = set_metrics(MetricsRegistry())
        try:
            registry = enable_metrics()
            assert registry.enabled
            assert get_metrics() is registry
            disable_metrics()
            assert not registry.enabled
        finally:
            set_metrics(previous)

    def test_set_metrics_swaps_and_returns_previous(self):
        mine = MetricsRegistry(enabled=True)
        previous = set_metrics(mine)
        try:
            assert get_metrics() is mine
        finally:
            assert set_metrics(previous) is mine


class TestStopwatch:
    def test_elapsed_monotonic(self):
        watch = Stopwatch()
        first = watch.elapsed
        second = watch.elapsed
        assert 0.0 <= first <= second

    def test_restart_resets_origin(self):
        watch = Stopwatch()
        _ = watch.elapsed
        watch.restart()
        assert watch.elapsed < 10.0
