"""Instrumentation tests: hand-counted metrics from real components.

Verifies that the numbers the hot paths report are *exact*: R*-tree
node reads against a tree whose page count is known by construction,
cache mirroring against the cache's own counters, and the disabled
registry recording nothing at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cache import LRUCache
from repro.core.extraction import extract_regions
from repro.core.parameters import ExtractionParameters
from repro.index.geometry import Rect
from repro.index.rstar import RStarTree
from repro.observability import MetricsRegistry, set_metrics
from tests.conftest import make_flower_image

PARAMS = ExtractionParameters(window_min=16, window_max=32, stride=8)


@pytest.fixture
def registry():
    """Swap in an isolated, enabled registry for the test's duration."""
    fresh = MetricsRegistry(enabled=True)
    previous = set_metrics(fresh)
    yield fresh
    set_metrics(previous)


@pytest.fixture
def disabled_registry():
    """Swap in an isolated registry left in its default disabled state."""
    fresh = MetricsRegistry()
    previous = set_metrics(fresh)
    yield fresh
    set_metrics(previous)


def _point(x: float, y: float) -> Rect:
    return Rect(np.array([x, y]), np.array([x, y]))


def _node_count(tree: RStarTree) -> int:
    """Count the tree's nodes via the page store, bypassing (and
    therefore not perturbing) the tree's own I/O counters."""
    count = 0
    pending = [tree.root_id]
    while pending:
        node = tree.store.read(pending.pop())
        count += 1
        if not node.is_leaf:
            pending.extend(entry.child_id for entry in node.entries)
    return count


class TestIndexCounters:
    def test_single_leaf_probe_reads_one_node(self):
        """Three entries in a fresh tree fit in the root leaf: one
        probe = one node read, by construction."""
        tree = RStarTree(2)
        for i in range(3):
            tree.insert(_point(float(i), float(i)), i)
        before = tree.counters.snapshot()
        found = tree.search(Rect(np.array([-1.0, -1.0]),
                                 np.array([5.0, 5.0])))
        delta = tree.counters.delta(before)
        assert sorted(found) == [0, 1, 2]
        assert delta["probes"] == 1
        assert delta["node_reads"] == 1
        assert delta["node_writes"] == 0

    def test_probe_fanout_counts_every_node(self):
        """A full-cover probe of a split tree reads the root plus
        every leaf — exactly ``height-0 nodes = node_count``."""
        tree = RStarTree(2, max_entries=4)
        for i in range(12):
            tree.insert(_point(float(i), float(i % 3)), i)
        assert tree.counters.splits >= 1
        nodes = _node_count(tree)
        assert nodes > 1  # the split actually happened
        before = tree.counters.snapshot()
        found = tree.search(Rect(np.array([-1.0, -1.0]),
                                 np.array([50.0, 50.0])))
        delta = tree.counters.delta(before)
        assert len(found) == 12
        assert delta["probes"] == 1
        assert delta["node_reads"] == nodes

    def test_selective_probe_reads_fewer_nodes(self):
        tree = RStarTree(2, max_entries=4)
        for i in range(12):
            tree.insert(_point(float(i), 0.0), i)
        nodes = _node_count(tree)
        before = tree.counters.snapshot()
        found = tree.search(Rect(np.array([0.0, -0.5]),
                                 np.array([0.5, 0.5])))
        delta = tree.counters.delta(before)
        assert found == [0]
        assert 1 <= delta["node_reads"] < nodes

    def test_insert_counts_writes_not_probes(self):
        tree = RStarTree(2)
        before = tree.counters.snapshot()
        tree.insert(_point(1.0, 1.0), "a")
        delta = tree.counters.delta(before)
        assert delta["node_writes"] >= 1
        assert delta["probes"] == 0

    def test_knn_counter(self):
        tree = RStarTree(2)
        for i in range(5):
            tree.insert(_point(float(i), 0.0), i)
        before = tree.counters.snapshot()
        tree.nearest(np.array([0.0, 0.0]), k=2)
        assert tree.counters.delta(before)["knn_searches"] == 1

    def test_counters_reset(self):
        tree = RStarTree(2)
        tree.insert(_point(0.0, 0.0), "a")
        assert tree.counters.node_writes > 0
        tree.counters.reset()
        assert tree.counters.snapshot() == {
            name: 0 for name in tree.counters.snapshot()}


class TestCacheMirroring:
    def test_registry_counters_match_cache_stats(self, registry):
        cache = LRUCache(2, metrics_name="unit")
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        stats = cache.stats()
        assert registry.counter("cache.unit.hits").value == stats.hits == 2
        assert registry.counter("cache.unit.misses").value \
            == stats.misses == 1
        assert registry.counter("cache.unit.evictions").value == 1

    def test_unnamed_cache_never_touches_registry(self, registry):
        cache = LRUCache(2)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        assert not any(name.startswith("cache.")
                       for name in registry.names())

    def test_disabled_registry_keeps_cache_counters_authoritative(
            self, disabled_registry):
        cache = LRUCache(2, metrics_name="unit")
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert "cache.unit.hits" not in disabled_registry


class TestExtractionInstrumentation:
    def test_extraction_counters_are_exact(self, registry):
        image = make_flower_image(64, 64)
        regions = extract_regions(image, PARAMS)
        assert registry.counter("extraction.images").value == 1
        assert registry.counter("extraction.regions").value == len(regions)
        windows = registry.counter("extraction.windows").value
        assert windows > 0
        # Each sliding window was produced by the DP, and is counted
        # exactly once by the wavelet layer too.
        assert registry.counter("wavelets.dp_windows").value > 0
        assert registry.counter("wavelets.dp_calls").value == 1
        summary = registry.histogram(
            "extraction.window_seconds").summary()
        assert summary.count == 1

    def test_extraction_counts_are_deterministic(self, registry):
        image = make_flower_image(64, 64)
        extract_regions(image, PARAMS)
        first = {name: registry.counter(name).value
                 for name in ("extraction.windows", "extraction.regions",
                              "extraction.clusters", "birch.points",
                              "birch.clusters")}
        registry.reset()
        extract_regions(image, PARAMS)
        second = {name: registry.counter(name).value for name in first}
        assert first == second

    def test_disabled_registry_records_nothing(self, disabled_registry):
        """True no-op when disabled: every instrument that exists
        holds its zero value, and no timer histograms appear."""
        image = make_flower_image(64, 64)
        extract_regions(image, PARAMS)
        for name, value in disabled_registry.snapshot().items():
            if hasattr(value, "count"):
                assert value.count == 0, name
            else:
                assert value == 0, name
        assert "extraction.window_seconds" not in disabled_registry
