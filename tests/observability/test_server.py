"""The metrics HTTP endpoint, end to end over a real socket.

``MetricsServer`` binds ``port=0`` (kernel-assigned) so the tests
exercise the genuine scrape path — connect, GET, parse — without port
conflicts, then diff the scraped text against the registry snapshot.
"""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.observability import MetricsRegistry
from repro.observability.export import render_prometheus, sanitize_metric_name
from repro.observability.server import CONTENT_TYPE, MetricsServer


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    registry.counter("query.count").inc(5)
    registry.gauge("cache.hit_rate").set(0.5)
    registry.histogram("query.seconds").observe(0.125)
    return registry


@pytest.fixture
def server():
    registry = make_registry()
    with MetricsServer(registry, port=0) as running:
        yield running, registry


def fetch(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status, response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


class TestScrape:
    def test_metrics_matches_registry_snapshot(self, server):
        running, registry = server
        status, content_type, body = fetch(running.url("/metrics"))
        assert status == 200
        assert content_type == CONTENT_TYPE
        assert body == render_prometheus(registry)

    def test_scrape_is_parseable_prometheus(self, server):
        running, registry = server
        _, _, body = fetch(running.url("/metrics"))
        families: dict[str, str] = {}
        samples: dict[str, float] = {}
        for line in body.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                assert kind in ("counter", "gauge", "summary", "histogram")
                families[name] = kind
            else:
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value.replace("+Inf", "inf"))
        assert families[sanitize_metric_name("query.count")] == "counter"
        assert samples[sanitize_metric_name("query.count")] == 5
        assert samples[sanitize_metric_name("cache.hit_rate")] == 0.5
        assert samples[sanitize_metric_name("query.seconds") + "_count"] == 1

    def test_scrape_sees_live_updates(self, server):
        running, registry = server
        registry.counter("query.count").inc(10)
        _, _, body = fetch(running.url("/metrics"))
        assert f"{sanitize_metric_name('query.count')} 15" in body

    def test_healthz(self, server):
        running, _ = server
        status, _, body = fetch(running.url("/healthz"))
        assert status == 200
        assert body == "ok\n"

    def test_unknown_path_is_404(self, server):
        running, _ = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(running.url("/nope"))
        assert excinfo.value.code == 404


class TestLifecycle:
    def test_port_zero_gets_a_real_port(self, server):
        running, _ = server
        host, port = running.address
        assert host == "127.0.0.1"
        assert port > 0

    def test_stop_is_idempotent_and_closes_socket(self):
        server = MetricsServer(make_registry(), port=0)
        server.start()
        url = server.url("/healthz")
        assert fetch(url)[0] == 200
        server.stop()
        server.stop()
        assert not server.running
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            fetch(url)

    def test_context_manager_stops_on_exit(self):
        with MetricsServer(make_registry(), port=0) as running:
            url = running.url("/healthz")
            assert running.running
        assert not running.running
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            fetch(url)

    def test_server_thread_is_daemon(self, server):
        running, _ = server
        thread = running._thread
        assert thread is not None and thread.daemon
