"""The fsck library function: machine-readable recovery summaries.

``walrus fsck`` (and CI) consume :func:`repro.core.fsck.fsck_database`
as a dict — these tests pin the summary schema for clean, corrupted,
incomplete and nonexistent databases, check the ``--json`` CLI path,
and verify the structured ``fsck`` event mirrors the returned summary.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.cli import main
from repro.core.database import WalrusDatabase
from repro.core.fsck import fsck_database
from repro.core.parameters import ExtractionParameters
from repro.datasets.generator import render_scene
from repro.index.faults import corrupt_page
from repro.observability.events import EventLog, parse_event_line, set_events


@pytest.fixture
def on_disk_db(tmp_path):
    directory = str(tmp_path / "db")
    database = WalrusDatabase.create(
        directory, params=ExtractionParameters(window_min=16, window_max=32,
                                               stride=8))
    database.add_images([
        render_scene(label, seed=seed, name=f"{label}-{seed}")
        for seed, label in enumerate(["flowers", "ocean", "sunset"])])
    database.close()
    return directory


class TestSummaryDict:
    def test_clean_database(self, on_disk_db):
        summary = fsck_database(on_disk_db)
        assert summary["ok"] is True
        assert summary["is_database"] is True
        assert summary["directory"] == on_disk_db
        assert summary["issues"] == []
        assert summary["pages_checked"] > 0
        index = summary["index"]
        assert index is not None and index["ok"] is True
        assert index["nodes_walked"] > 0
        assert index["leaf_entries"] == index["recorded_size"]

    def test_summary_is_json_serializable(self, on_disk_db):
        summary = fsck_database(on_disk_db)
        assert json.loads(json.dumps(summary)) == summary

    def test_corrupted_page_reported(self, on_disk_db):
        database = WalrusDatabase.open(on_disk_db)
        root_id = database.index.root_id
        database.close()
        corrupt_page(os.path.join(on_disk_db, WalrusDatabase.PAGE_FILE),
                     root_id)
        summary = fsck_database(on_disk_db)
        assert summary["ok"] is False
        assert summary["is_database"] is True
        assert any(f"page {root_id}" in issue for issue in summary["issues"])

    def test_missing_files(self, tmp_path):
        directory = tmp_path / "empty"
        directory.mkdir()
        summary = fsck_database(str(directory))
        assert summary["ok"] is False
        assert summary["is_database"] is False
        assert summary["pages_checked"] == 0
        assert summary["index"] is None
        assert any("missing" in issue for issue in summary["issues"])

    def test_nonexistent_directory(self, tmp_path):
        summary = fsck_database(str(tmp_path / "nope"))
        assert summary["ok"] is False
        assert summary["is_database"] is False
        assert any("not a directory" in issue
                   for issue in summary["issues"])


class TestStructuredEvents:
    def test_fsck_emits_its_summary(self, on_disk_db):
        class Spy(logging.Handler):
            def __init__(self) -> None:
                super().__init__()
                self.lines: list[str] = []

            def emit(self, record: logging.LogRecord) -> None:
                self.lines.append(record.getMessage())

        log = EventLog(enabled=True)
        spy = Spy()
        log.attach_handler(spy)
        previous = set_events(log)
        try:
            summary = fsck_database(on_disk_db)
        finally:
            set_events(previous)
            log.close()
        rows = [parse_event_line(line) for line in spy.lines]
        fsck_rows = [row for row in rows if row["event"] == "fsck"]
        assert len(fsck_rows) == 1
        event = fsck_rows[0]
        assert event["ok"] == summary["ok"]
        assert event["pages_checked"] == summary["pages_checked"]
        assert event["index"] == summary["index"]
        # The index walk also narrates itself as a verify event.
        assert any(row["event"] == "verify" for row in rows)


class TestCliJson:
    def test_json_flag_prints_summary(self, on_disk_db, capsys):
        assert main(["fsck", "--json", on_disk_db]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["ok"] is True
        assert printed == fsck_database(on_disk_db)

    def test_json_flag_nonzero_on_damage(self, on_disk_db, capsys):
        database = WalrusDatabase.open(on_disk_db)
        root_id = database.index.root_id
        database.close()
        corrupt_page(os.path.join(on_disk_db, WalrusDatabase.PAGE_FILE),
                     root_id)
        assert main(["fsck", "--json", on_disk_db]) == 1
        printed = json.loads(capsys.readouterr().out)
        assert printed["ok"] is False
        assert printed["issues"]
