"""Tests for bulk indexing and nearest-region exploration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.exceptions import DatabaseError


@pytest.fixture
def params() -> ExtractionParameters:
    return ExtractionParameters(window_min=16, window_max=32, stride=8)


@pytest.fixture
def scenes(flower_factory):
    from repro.datasets import render_scene

    return [
        flower_factory(64, 96, cy=28, cx=40, radius=16, name="flower-a"),
        flower_factory(64, 96, cy=40, cx=70, radius=20, name="flower-b"),
        render_scene("ocean", seed=3, name="ocean"),
        render_scene("night_sky", seed=4, name="night"),
        render_scene("brick_wall", seed=5, name="bricks"),
    ]


class TestBulkIndexing:
    def test_bulk_equals_incremental_results(self, params, scenes,
                                             flower_factory):
        incremental = WalrusDatabase(params)
        incremental.add_images(scenes)
        bulk = WalrusDatabase(params)
        ids = bulk.add_images(scenes, bulk=True)
        assert ids == list(range(len(scenes)))
        assert bulk.region_count == incremental.region_count

        query = flower_factory(64, 96, cy=30, cx=30, radius=14)
        qp = QueryParameters(epsilon=0.085)
        bulk_result = [(m.name, round(m.similarity, 9))
                       for m in bulk.query(query, qp)]
        incremental_result = [(m.name, round(m.similarity, 9))
                              for m in incremental.query(query, qp)]
        assert bulk_result == incremental_result

    def test_bulk_index_invariants(self, params, scenes):
        database = WalrusDatabase(params)
        database.add_images(scenes, bulk=True)
        database.index.check_invariants()

    def test_bulk_requires_empty(self, params, scenes):
        database = WalrusDatabase(params)
        database.add_image(scenes[0])
        with pytest.raises(DatabaseError):
            database.add_images(scenes[1:], bulk=True)

    def test_incremental_extends_bulk(self, params, scenes,
                                      flower_factory):
        database = WalrusDatabase(params)
        database.add_images(scenes[:3], bulk=True)
        database.add_image(scenes[3])
        database.index.check_invariants()
        assert len(database) == 4

    def test_remove_after_bulk(self, params, scenes):
        database = WalrusDatabase(params)
        database.add_images(scenes, bulk=True)
        database.remove_image(0)
        database.index.check_invariants()
        assert len(database) == len(scenes) - 1


class TestNearestRegions:
    def test_sorted_and_well_formed(self, params, scenes, flower_factory):
        database = WalrusDatabase(params)
        database.add_images(scenes)
        results = database.nearest_regions(
            flower_factory(64, 96, radius=15), k=3)
        distances = [match.distance for match in results]
        assert distances == sorted(distances)
        for match in results:
            assert match.distance >= 0
            assert match.image_id in database.images
            assert match.name == database.images[match.image_id].name
            assert 0 <= match.target_region < len(
                database.images[match.image_id].regions)

    def test_nearest_matches_probe(self, params, scenes, flower_factory):
        """Every nearest-region distance equals the true signature
        distance."""
        database = WalrusDatabase(params)
        database.add_images(scenes)
        query = flower_factory(64, 96, radius=15)
        query_regions = database.extractor.extract(query)
        for match in database.nearest_regions(query, k=2)[:20]:
            target = database.images[match.image_id].regions[
                match.target_region]
            expected = np.linalg.norm(
                query_regions[match.query_region].signature.centroid
                - target.signature.centroid)
            assert match.distance == pytest.approx(expected)

    def test_empty_database_rejected(self, params, flower_factory):
        with pytest.raises(DatabaseError):
            WalrusDatabase(params).nearest_regions(flower_factory())
