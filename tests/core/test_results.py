"""Tests for the query result containers."""

from __future__ import annotations

import pytest

from repro.core.matching import MatchOutcome
from repro.core.results import ImageMatch, QueryResult, QueryStats


def make_match(name: str, similarity: float) -> ImageMatch:
    outcome = MatchOutcome(similarity, ((0, 0),), 100, 100)
    return ImageMatch(0, name, similarity, outcome)


def make_result(*pairs) -> QueryResult:
    matches = tuple(make_match(name, sim) for name, sim in pairs)
    stats = QueryStats(query_regions=3, regions_retrieved=9,
                       mean_regions_per_query_region=3.0,
                       candidate_images=len(matches),
                       elapsed_seconds=0.5)
    return QueryResult(matches, stats)


class TestQueryResult:
    def test_iteration(self):
        result = make_result(("a", 0.9), ("b", 0.5))
        assert [match.name for match in result] == ["a", "b"]

    def test_len(self):
        assert len(make_result(("a", 0.9))) == 1
        assert len(make_result()) == 0

    def test_names(self):
        result = make_result(("x", 0.8), ("y", 0.7), ("z", 0.1))
        assert result.names() == ["x", "y", "z"]

    def test_matches_carry_outcome(self):
        result = make_result(("a", 0.9))
        match = result.matches[0]
        assert match.outcome.similarity == pytest.approx(0.9)
        assert match.outcome.pairs == ((0, 0),)


class TestQueryStats:
    def test_fields(self):
        stats = make_result(("a", 1.0)).stats
        assert stats.query_regions == 3
        assert stats.mean_regions_per_query_region == pytest.approx(3.0)
        assert stats.candidate_images == 1

    def test_frozen(self):
        stats = make_result().stats
        with pytest.raises(AttributeError):
            stats.query_regions = 7
