"""Matching across images of DIFFERENT sizes (Section 4's variations).

The paper's misc collection mixes 85x128, 96x128 and 128x85 images;
Definition 4.3's denominator choices matter exactly then.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitmap import CoverageBitmap
from repro.core.matching import greedy_match, quick_match
from repro.core.regions import Region, RegionSignature


def region(height: int, width: int,
           windows: list[tuple[int, int, int]]) -> Region:
    return Region(
        signature=RegionSignature.from_centroid(np.zeros(2)),
        bitmap=CoverageBitmap.from_windows(height, width, 8, windows),
        window_count=len(windows),
        cluster_radius=0.0,
    )


@pytest.fixture
def small_query():
    """One 32x32 region covering 1/4 of a 64x64 query image."""
    return [region(64, 64, [(0, 0, 32)])]


@pytest.fixture
def big_target():
    """One 64x64 region covering 1/4 of a 128x128 target image."""
    return [region(128, 128, [(0, 0, 64)])]


class TestDifferentSizes:
    def test_area_mode_both(self, small_query, big_target):
        outcome = quick_match(small_query, big_target, [(0, 0)],
                              area_mode="both")
        expected = (32 * 32 + 64 * 64) / (64 * 64 + 128 * 128)
        assert outcome.similarity == pytest.approx(expected)

    def test_area_mode_query(self, small_query, big_target):
        outcome = quick_match(small_query, big_target, [(0, 0)],
                              area_mode="query")
        assert outcome.similarity == pytest.approx(0.25)

    def test_area_mode_smaller(self, small_query, big_target):
        outcome = quick_match(small_query, big_target, [(0, 0)],
                              area_mode="smaller")
        expected = (32 * 32 + 64 * 64) / (2 * 64 * 64)
        assert outcome.similarity == pytest.approx(expected)

    def test_smaller_mode_rewards_contained_scenes(self):
        """A small query fully contained in a big target scores 1.0
        under "smaller" but below 1.0 under "both" — the paper's
        motivation for the variation."""
        query = [region(64, 64, [(0, 0, 64)])]        # whole image
        target = [region(128, 128, [(0, 0, 64)])]     # quarter
        both = quick_match(query, target, [(0, 0)], area_mode="both")
        smaller = quick_match(query, target, [(0, 0)],
                              area_mode="smaller")
        assert smaller.similarity == pytest.approx(1.0)
        assert both.similarity < 1.0

    def test_greedy_with_mixed_sizes(self, small_query, big_target):
        outcome = greedy_match(small_query, big_target, [(0, 0)],
                               area_mode="both")
        assert outcome.pairs == ((0, 0),)
        assert outcome.query_covered == 32 * 32
        assert outcome.target_covered == 64 * 64

    def test_misc_collection_dimensions(self):
        """The paper's three image shapes inter-match cleanly."""
        shapes = [(85, 128), (96, 128), (128, 85)]
        regions = {shape: [region(shape[0], shape[1],
                                  [(0, 0, 64)])] for shape in shapes}
        for qs in shapes:
            for ts in shapes:
                outcome = quick_match(regions[qs], regions[ts], [(0, 0)])
                assert 0.0 < outcome.similarity <= 1.0
