"""Tests for the Section 5.5 refined matching phase and scene queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import WalrusDatabase
from repro.core.extraction import extract_regions
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.exceptions import DatabaseError, ParameterError
from repro.imaging.draw import Canvas, draw_flower
from repro.imaging.image import Image


@pytest.fixture
def refine_params() -> ExtractionParameters:
    return ExtractionParameters(window_min=16, window_max=32, stride=8,
                                refine_signature_size=8)


def stripes_image(period: int, name: str) -> Image:
    canvas = Canvas(64, 64)
    canvas.stripes((0.8, 0.2, 0.2), (0.2, 0.2, 0.8), period=period)
    return canvas.to_image(name=name)


class TestParameters:
    def test_refine_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(window_min=16, window_max=32,
                                 refine_signature_size=6)

    def test_refine_must_exceed_signature_size(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(window_min=16, window_max=32,
                                 refine_signature_size=2)

    def test_refine_must_fit_window_min(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(window_min=16, window_max=32,
                                 refine_signature_size=32)

    def test_refine_epsilon_validation(self):
        with pytest.raises(ParameterError):
            QueryParameters(refine_epsilon=-0.1)


class TestExtraction:
    def test_regions_carry_refined_signatures(self, refine_params,
                                              flower_factory):
        regions = extract_regions(flower_factory(), refine_params)
        for region in regions:
            assert region.refined is not None
            assert region.refined.shape == (3 * 8 * 8,)

    def test_no_refined_by_default(self, fast_params, flower_factory):
        regions = extract_regions(flower_factory(), fast_params)
        assert all(region.refined is None for region in regions)

    def test_refined_distance_requires_refined(self, fast_params,
                                               flower_factory):
        regions = extract_regions(flower_factory(), fast_params)
        with pytest.raises(ParameterError):
            regions[0].refined_distance(regions[0])

    def test_refined_distance_zero_to_self(self, refine_params,
                                           flower_factory):
        regions = extract_regions(flower_factory(), refine_params)
        assert regions[0].refined_distance(regions[0]) == 0.0

    def test_refined_separates_textures_coarse_confuses(self):
        """Two stripe textures whose *window averages* agree but whose
        fine structure differs: 2x2 signatures are nearly identical,
        8x8 refined signatures are not."""
        params = ExtractionParameters(window_min=16, window_max=16,
                                      stride=16, color_space="rgb",
                                      refine_signature_size=8,
                                      cluster_threshold=0.02)
        fine = extract_regions(stripes_image(2, "fine"), params)
        coarse = extract_regions(stripes_image(8, "coarse"), params)
        best_coarse = min(a.signature.distance(b.signature)
                          for a in fine for b in coarse)
        best_refined = min(a.refined_distance(b)
                           for a in fine for b in coarse)
        assert best_refined > best_coarse + 0.05


class TestDatabaseRefinement:
    @pytest.fixture
    def database(self, refine_params, flower_factory) -> WalrusDatabase:
        database = WalrusDatabase(refine_params)
        database.add_images([
            flower_factory(64, 64, radius=18, name="flower"),
            stripes_image(2, "fine-stripes"),
            stripes_image(8, "coarse-stripes"),
        ])
        return database

    def test_refinement_only_filters(self, database, flower_factory):
        query = flower_factory(64, 64, cy=40, cx=24, radius=14)
        coarse = database.query(query, QueryParameters(epsilon=0.085))
        refined = database.query(query, QueryParameters(
            epsilon=0.085, refine_epsilon=0.3))
        assert refined.stats.regions_retrieved <= \
            coarse.stats.regions_retrieved
        assert set(refined.names()) <= set(coarse.names())

    def test_tight_refinement_drops_texture_confusions(self, database):
        query = stripes_image(2, "query-fine")
        loose = database.query(query, QueryParameters(epsilon=0.2))
        tight = database.query(query, QueryParameters(
            epsilon=0.2, refine_epsilon=0.05))
        assert "fine-stripes" in tight.names()
        loose_retrieved = loose.stats.regions_retrieved
        tight_retrieved = tight.stats.regions_retrieved
        assert tight_retrieved < loose_retrieved

    def test_refine_without_index_support_rejected(self, fast_params,
                                                   flower_factory):
        database = WalrusDatabase(fast_params)
        database.add_image(flower_factory())
        with pytest.raises(DatabaseError):
            database.query(flower_factory(),
                           QueryParameters(refine_epsilon=0.1))

    def test_zero_refine_epsilon_keeps_self_match(self, database,
                                                  flower_factory):
        # A region always matches itself at refined distance 0; use the
        # indexed image as its own query.
        query = flower_factory(64, 64, radius=18, name="flower")
        result = database.query(query, QueryParameters(
            epsilon=0.02, refine_epsilon=0.0))
        assert "flower" in result.names()


class TestQueryScene:
    def test_scene_query_finds_object(self, refine_params, flower_factory):
        database = WalrusDatabase(refine_params)
        database.add_images([
            flower_factory(96, 96, cy=64, cx=64, radius=22, name="flower"),
            stripes_image(4, "stripes"),
        ])
        # The user marks the flower's bounding area in a larger scene.
        canvas = Canvas(96, 128, (0.5, 0.5, 0.5))
        draw_flower(canvas, 40, 40, 20, (0.85, 0.1, 0.1),
                    (0.9, 0.8, 0.2))
        scene = canvas.to_image(name="busy-scene")
        result = database.query_scene(scene, 16, 16, 48, 48)
        assert result.names()
        assert result.names()[0] == "flower"

    def test_scene_default_area_mode_is_query(self, refine_params,
                                              flower_factory):
        database = WalrusDatabase(refine_params)
        database.add_image(flower_factory(96, 96, radius=24,
                                          name="flower"))
        image = flower_factory(96, 128, cy=48, cx=48, radius=20)
        result = database.query_scene(image, 16, 16, 64, 64)
        # With area_mode="query" a fully-covered scene scores 1 even if
        # the target has extra unmatched area.
        assert result.matches[0].similarity <= 1.0

    def test_scene_crop_validated(self, refine_params, flower_factory):
        database = WalrusDatabase(refine_params)
        database.add_image(flower_factory())
        from repro.exceptions import ImageFormatError

        with pytest.raises(ImageFormatError):
            database.query_scene(flower_factory(), 50, 50, 64, 64)


class TestDescribe:
    def test_describe_fields(self, fast_params, flower_factory):
        database = WalrusDatabase(fast_params)
        database.add_images([flower_factory(name="a"),
                             flower_factory(radius=10, name="b")])
        info = database.describe()
        assert info["images"] == 2
        assert info["regions"] == database.region_count
        assert info["regions_per_image_min"] >= 1
        assert info["regions_per_image_mean"] == pytest.approx(
            info["regions"] / 2)
        assert info["feature_dimensions"] == 12
        assert info["index_height"] >= 1
