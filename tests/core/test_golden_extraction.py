"""Golden regression tests: extraction must be byte-identical.

The committed fixture ``tests/fixtures/golden_flower.npz`` holds every
canonical extraction output for one deterministic image (see
``tests/golden.py``).  These tests recompute the arrays from scratch
and compare raw bytes — no tolerances — so any numerical drift in the
wavelet DP, color conversion, BIRCH clustering or region assembly is
caught even when it is far below any ``allclose`` threshold.

If a change is *supposed* to alter the numbers, regenerate with
``PYTHONPATH=src python scripts/regenerate_golden.py`` and commit the
new fixture with the change.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from tests.golden import GOLDEN_PATH, golden_arrays

_FIXTURE = os.path.join(os.path.dirname(__file__), "..", "..", GOLDEN_PATH)


@pytest.fixture(scope="module")
def committed() -> dict[str, np.ndarray]:
    with np.load(os.path.abspath(_FIXTURE)) as archive:
        return {name: archive[name] for name in archive.files}


@pytest.fixture(scope="module")
def recomputed() -> dict[str, np.ndarray]:
    return golden_arrays()


class TestGoldenExtraction:
    def test_fixture_has_every_array(self, committed, recomputed):
        assert set(committed) == set(recomputed)

    @pytest.mark.parametrize("name", [
        "features", "geometry", "region_lower", "region_upper",
        "window_counts", "cluster_radii", "bitmaps",
    ])
    def test_byte_identical(self, committed, recomputed, name):
        fresh = recomputed[name]
        golden = committed[name]
        assert fresh.dtype == golden.dtype, name
        assert fresh.shape == golden.shape, name
        assert fresh.tobytes() == golden.tobytes(), (
            f"{name}: extraction output drifted from the committed "
            f"golden fixture (max abs diff "
            f"{np.max(np.abs(fresh.astype(np.float64) - golden.astype(np.float64)))!r}); "
            "if intended, rerun scripts/regenerate_golden.py")

    def test_extraction_is_run_to_run_deterministic(self, recomputed):
        again = golden_arrays()
        for name, array in recomputed.items():
            assert array.tobytes() == again[name].tobytes(), name
