"""Tests for region extraction (windows -> clusters -> regions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.extraction import RegionExtractor, extract_regions
from repro.core.parameters import ExtractionParameters
from repro.imaging.image import Image


class TestBasicExtraction:
    def test_uniform_image_single_region(self, fast_params):
        image = Image(np.full((64, 64, 3), 0.4), "rgb")
        regions = extract_regions(image, fast_params)
        assert len(regions) == 1
        assert regions[0].cluster_radius <= fast_params.cluster_threshold

    def test_uniform_image_region_covers_window_span(self, fast_params):
        image = Image(np.full((64, 64, 3), 0.4), "rgb")
        region = extract_regions(image, fast_params)[0]
        # Windows at stride 8 with sizes 16/32 reach every pixel.
        assert region.covered_pixels == 64 * 64

    def test_two_halves_two_regions(self, fast_params):
        pixels = np.zeros((64, 64, 3))
        pixels[:, :32] = (0.9, 0.1, 0.1)
        pixels[:, 32:] = (0.1, 0.1, 0.9)
        regions = extract_regions(Image(pixels, "rgb"), fast_params)
        # Two homogeneous regions plus possibly boundary-straddling ones.
        assert len(regions) >= 2
        big = sorted(regions, key=lambda r: r.window_count)[-2:]
        for region in big:
            assert region.covered_pixels >= 24 * 64

    def test_flower_produces_object_and_background_regions(
            self, fast_params, flower_factory):
        image = flower_factory(64, 64, radius=18)
        regions = extract_regions(image, fast_params)
        assert len(regions) >= 2
        coverages = sorted(r.covered_pixels for r in regions)
        assert coverages[-1] > 1000  # a dominant background region

    def test_region_count_decreases_with_threshold(self, rng):
        """The Section 6.6 trend on an actual image."""
        image = Image(rng.uniform(size=(64, 64, 3)), "rgb")
        counts = []
        for threshold in (0.025, 0.05, 0.1, 0.2):
            params = ExtractionParameters(window_min=16, window_max=32,
                                          stride=8,
                                          cluster_threshold=threshold)
            counts.append(len(extract_regions(image, params)))
        assert counts == sorted(counts, reverse=True)

    def test_rgb_produces_more_regions_than_ycc(self, flower_factory):
        """The Section 6.6 observation: RGB yields more clusters than
        YCC at the same threshold (typically ~4x in the paper)."""
        image = flower_factory(96, 96, radius=28)
        ycc = ExtractionParameters(window_min=16, window_max=32, stride=8,
                                   color_space="ycc")
        rgb = ycc.with_(color_space="rgb")
        assert len(extract_regions(image, rgb)) >= \
            len(extract_regions(image, ycc))


class TestSignatureModes:
    def test_bbox_mode_produces_boxes(self, fast_params, flower_factory):
        image = flower_factory()
        regions = extract_regions(
            image, fast_params.with_(signature_mode="bbox"))
        multi = [r for r in regions if r.window_count > 1]
        assert multi, "expected at least one multi-window cluster"
        assert any(not r.signature.is_point for r in multi)

    def test_centroid_mode_produces_points(self, fast_params,
                                           flower_factory):
        image = flower_factory()
        regions = extract_regions(image, fast_params)
        assert all(r.signature.is_point for r in regions)

    def test_bbox_contains_centroid(self, fast_params, flower_factory):
        image = flower_factory()
        points = extract_regions(image, fast_params)
        boxes = extract_regions(image,
                                fast_params.with_(signature_mode="bbox"))
        # Same clustering -> same number of regions, and each bbox
        # contains the corresponding centroid.
        assert len(points) == len(boxes)
        for point, box in zip(points, boxes):
            assert np.all(box.signature.lower
                          <= point.signature.centroid + 1e-12)
            assert np.all(point.signature.centroid
                          <= box.signature.upper + 1e-12)


class TestInvarianceProperties:
    def test_translation_invariance_of_signatures(self, fast_params,
                                                  flower_factory):
        """A translated object yields a region with (near-)identical
        signature — the core WALRUS claim."""
        left = flower_factory(64, 96, cy=32, cx=24, radius=14)
        right = flower_factory(64, 96, cy=32, cx=72, radius=14)
        regions_left = extract_regions(left, fast_params)
        regions_right = extract_regions(right, fast_params)
        best = min(
            a.signature.distance(b.signature)
            for a in regions_left for b in regions_right
            if a.window_count > 1 and b.window_count > 1
        )
        assert best < 0.02

    def test_min_region_windows_filters_noise(self, rng):
        image = Image(rng.uniform(size=(64, 64, 3)), "rgb")
        params = ExtractionParameters(window_min=16, window_max=16,
                                      stride=8, cluster_threshold=0.02)
        all_regions = extract_regions(image, params)
        filtered = extract_regions(image,
                                   params.with_(min_region_windows=3))
        assert len(filtered) <= len(all_regions)
        assert all(r.window_count >= 3 for r in filtered)


class TestCoverage:
    def test_coverage_of_all_regions(self, fast_params, flower_factory):
        image = flower_factory()
        extractor = RegionExtractor(fast_params)
        regions = extractor.extract(image)
        coverage = extractor.coverage(regions, image.height, image.width)
        assert coverage == pytest.approx(1.0)

    def test_coverage_empty(self, fast_params):
        extractor = RegionExtractor(fast_params)
        assert extractor.coverage([], 64, 64) == 0.0

    def test_default_parameters_used(self):
        extractor = RegionExtractor()
        assert extractor.params.window_max == 64
