"""The LRU cache substrate and the database's query-path caches."""

from __future__ import annotations

import pytest

from repro.core.cache import LRUCache
from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import render_scene
from repro.exceptions import InvalidParameterError

PARAMS = ExtractionParameters(window_min=16, window_max=32, stride=8)


class TestLRUCache:
    def test_basic_get_put(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42
        assert "a" in cache and len(cache) == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh a; b is now least recent
        cache.put("c", 3)     # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)    # rewrite refreshes a
        cache.put("c", 3)     # evicts b
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert "a" not in cache
        assert cache.get("a") is None
        assert cache.stats().misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            LRUCache(-1)

    def test_stats_and_hit_rate(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5
        assert LRUCache(4).stats().hit_rate == 0.0

    def test_clear_keeps_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1


class TestDatabaseCaches:
    @pytest.fixture
    def database(self):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images([
            render_scene(label, seed=seed, name=f"{label}-{seed}")
            for seed, label in enumerate(["flowers", "ocean", "sunset"])])
        return database

    @pytest.fixture
    def query_image(self):
        return render_scene("flowers", seed=31, name="query")

    def test_repeated_query_hits_both_caches(self, database, query_image):
        qp = QueryParameters(epsilon=0.085)
        first = database.query(query_image, qp)
        stats = database.cache_stats()
        assert stats["signatures"].hits == 0
        assert stats["probes"].hits == 0

        second = database.query(query_image, qp)
        stats = database.cache_stats()
        assert stats["signatures"].hits == 1
        assert stats["probes"].hits == first.stats.query_regions
        assert ([(m.name, m.similarity) for m in second]
                == [(m.name, m.similarity) for m in first])

    def test_tau_sweep_shares_probes(self, database, query_image):
        database.query(query_image, QueryParameters(epsilon=0.085,
                                                    tau=0.0))
        database.query(query_image, QueryParameters(epsilon=0.085,
                                                    tau=0.5))
        stats = database.cache_stats()
        assert stats["probes"].hits > 0  # tau acts after the probe

    def test_epsilon_change_misses_probe_cache(self, database,
                                               query_image):
        database.query(query_image, QueryParameters(epsilon=0.085))
        database.query(query_image, QueryParameters(epsilon=0.05))
        stats = database.cache_stats()
        assert stats["probes"].hits == 0

    def test_index_mutation_invalidates_probes(self, database,
                                               query_image):
        qp = QueryParameters(epsilon=0.085)
        before = database.query(query_image, qp)
        database.add_image(render_scene("flowers", seed=4242,
                                        name="flowers-new"))
        after = database.query(query_image, qp)
        stats = database.cache_stats()
        assert stats["probes"].hits == 0  # generation changed every key
        assert len(after) >= len(before)
        assert any(match.name == "flowers-new" for match in after)

    def test_caches_can_be_disabled(self, query_image):
        database = WalrusDatabase.create(params=PARAMS,
                                         signature_cache=0, probe_cache=0)
        database.add_images([render_scene("flowers", seed=1,
                                          name="flowers-1")])
        database.query(query_image)
        database.query(query_image)
        stats = database.cache_stats()
        assert stats["signatures"].hits == 0
        assert stats["probes"].hits == 0

    def test_snapshot_drops_cache_contents(self, tmp_path, database,
                                           query_image):
        database.query(query_image)
        snapshot = str(tmp_path / "snap.pickle")
        database._write_snapshot(snapshot)
        restored = WalrusDatabase.open(snapshot)
        stats = restored.cache_stats()
        assert stats["signatures"].size == 0
        assert stats["probes"].size == 0
        # ... but caching still works after the round-trip.
        restored.query(query_image)
        restored.query(query_image)
        assert restored.cache_stats()["signatures"].hits == 1
