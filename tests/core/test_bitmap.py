"""Tests for coarse coverage bitmaps (Section 5.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap import CoverageBitmap
from repro.exceptions import ParameterError


class TestConstruction:
    def test_empty(self):
        bitmap = CoverageBitmap(64, 64, 16)
        assert bitmap.covered_pixels == 0
        assert bitmap.covered_fraction == 0.0

    def test_full(self):
        bitmap = CoverageBitmap.full(64, 48, 16)
        assert bitmap.covered_pixels == 64 * 48
        assert bitmap.covered_fraction == pytest.approx(1.0)

    def test_rejects_bad_grid(self):
        with pytest.raises(ParameterError):
            CoverageBitmap(10, 10, 0)

    def test_rejects_bad_block_shape(self):
        with pytest.raises(ParameterError):
            CoverageBitmap(10, 10, 4, np.ones((3, 3), dtype=bool))


class TestFromWindows:
    def test_single_window_covers_its_blocks(self):
        bitmap = CoverageBitmap.from_windows(64, 64, 16, [(0, 0, 32)])
        # 32x32 window over a 64x64 image covers the 8x8 top-left blocks.
        assert bitmap.blocks[:8, :8].all()
        assert not bitmap.blocks[8:, :].any()
        assert not bitmap.blocks[:, 8:].any()
        assert bitmap.covered_pixels == 32 * 32

    def test_overlapping_windows_not_double_counted(self):
        windows = [(0, 0, 32), (16, 16, 32)]
        bitmap = CoverageBitmap.from_windows(64, 64, 8, windows)
        mask = np.zeros((64, 64), dtype=bool)
        for row, col, size in windows:
            mask[row:row + size, col:col + size] = True
        assert bitmap.covered_pixels == int(mask.sum())

    def test_half_coverage_threshold(self):
        # A window covering exactly half of each block it touches.
        bitmap = CoverageBitmap.from_windows(16, 16, 4, [(0, 0, 2)],
                                             threshold=0.5)
        # Block size 4x4; window 2x2 covers 4/16 < 0.5 of block (0,0).
        assert not bitmap.blocks.any()
        generous = CoverageBitmap.from_windows(16, 16, 4, [(0, 0, 2)],
                                               threshold=0.25)
        assert generous.blocks[0, 0]

    def test_rejects_out_of_bounds_window(self):
        with pytest.raises(ParameterError):
            CoverageBitmap.from_windows(32, 32, 8, [(20, 20, 16)])

    def test_non_divisible_image_sizes(self):
        # The paper's 85x128 images: edge blocks are smaller.
        bitmap = CoverageBitmap.full(85, 128, 16)
        assert bitmap.covered_pixels == 85 * 128
        counts = bitmap.block_pixel_counts()
        assert counts.sum() == 85 * 128
        assert counts.min() >= 1


class TestSetAlgebra:
    def test_union(self):
        a = CoverageBitmap.from_windows(64, 64, 8, [(0, 0, 32)])
        b = CoverageBitmap.from_windows(64, 64, 8, [(32, 32, 32)])
        union = a.union(b)
        assert union.covered_pixels == 2 * 32 * 32
        # Inputs untouched.
        assert a.covered_pixels == 32 * 32

    def test_union_update_in_place(self):
        a = CoverageBitmap.from_windows(64, 64, 8, [(0, 0, 32)])
        b = CoverageBitmap.from_windows(64, 64, 8, [(0, 32, 32)])
        a.union_update(b)
        assert a.covered_pixels == 2 * 32 * 32

    def test_intersection(self):
        a = CoverageBitmap.from_windows(64, 64, 8, [(0, 0, 48)])
        b = CoverageBitmap.from_windows(64, 64, 8, [(16, 16, 48)])
        both = a.intersection(b)
        assert both.covered_pixels == 32 * 32

    def test_incompatible_bitmaps_rejected(self):
        a = CoverageBitmap(64, 64, 8)
        b = CoverageBitmap(64, 64, 16)
        with pytest.raises(ParameterError):
            a.union(b)
        c = CoverageBitmap(32, 64, 8)
        with pytest.raises(ParameterError):
            a.union(c)

    def test_marginal_pixels(self):
        a = CoverageBitmap.from_windows(64, 64, 8, [(0, 0, 32)])
        b = CoverageBitmap.from_windows(64, 64, 8, [(0, 16, 32)])
        fresh = a.marginal_pixels(b)
        assert fresh == b.covered_pixels - 16 * 32

    def test_copy_independent(self):
        a = CoverageBitmap.from_windows(64, 64, 8, [(0, 0, 32)])
        b = a.copy()
        b.union_update(CoverageBitmap.full(64, 64, 8))
        assert a.covered_pixels == 32 * 32


class TestPacking:
    def test_roundtrip(self, rng):
        blocks = rng.uniform(size=(16, 16)) < 0.5
        bitmap = CoverageBitmap(85, 128, 16, blocks)
        packed = bitmap.pack()
        assert len(packed) == 32  # the paper's "32 byte" bitmap
        restored = CoverageBitmap.unpack(packed, 85, 128, 16)
        assert restored == bitmap

    @given(seed=st.integers(0, 10_000), grid=st.sampled_from([4, 8, 16]))
    @settings(max_examples=30)
    def test_roundtrip_property(self, seed, grid):
        blocks = np.random.default_rng(seed).uniform(size=(grid, grid)) < 0.3
        bitmap = CoverageBitmap(96, 128, grid, blocks)
        assert CoverageBitmap.unpack(bitmap.pack(), 96, 128, grid) == bitmap


class TestMaskAgreement:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_from_mask_matches_naive_property(self, seed):
        """Vectorized block coverage == per-block mean thresholding."""
        rng = np.random.default_rng(seed)
        height = int(rng.integers(17, 100))
        width = int(rng.integers(17, 100))
        mask = rng.uniform(size=(height, width)) < 0.4
        bitmap = CoverageBitmap.from_mask(mask, 16)
        row_edges = np.linspace(0, height, 17).round().astype(int)
        col_edges = np.linspace(0, width, 17).round().astype(int)
        for i in range(16):
            for j in range(16):
                block = mask[row_edges[i]:row_edges[i + 1],
                             col_edges[j]:col_edges[j + 1]]
                expected = block.size > 0 and block.mean() >= 0.5
                assert bitmap.blocks[i, j] == expected


class TestBatchedConstruction:
    """from_masks / from_window_groups must equal the scalar paths —
    batched extraction relies on it."""

    def test_from_masks_equals_from_mask(self, rng):
        masks = rng.uniform(size=(5, 48, 64)) > 0.6
        batched = CoverageBitmap.from_masks(masks, 16)
        for mask, bitmap in zip(masks, batched):
            single = CoverageBitmap.from_mask(mask, 16)
            assert np.array_equal(bitmap.blocks, single.blocks)

    def test_from_window_groups_equals_from_windows(self, rng):
        groups = []
        for _ in range(4):
            count = int(rng.integers(1, 8))
            groups.append([
                (int(rng.integers(0, 32)), int(rng.integers(0, 48)), 16)
                for _ in range(count)
            ])
        batched = CoverageBitmap.from_window_groups(48, 64, 16, groups)
        for group, bitmap in zip(groups, batched):
            single = CoverageBitmap.from_windows(48, 64, 16, group)
            assert np.array_equal(bitmap.blocks, single.blocks)

    def test_from_window_groups_empty(self):
        assert CoverageBitmap.from_window_groups(32, 32, 16, []) == []
