"""Database-level format migration: ``walrus migrate`` end to end.

Satellite coverage for the v3 rollout: a checkpointed database must
round-trip v2 → v3 → v2 through :func:`repro.core.migrate
.migrate_database` (and the CLI) with bit-identical query results, a
clean fsck after every hop, and an unchanged commit generation.  The
migrated v3 database must also answer cold queries without a single
``pickle.loads`` — the acceptance criterion the whole format exists
for.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.cli import main
from repro.core.database import WalrusDatabase
from repro.core.migrate import migrate_database
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.datasets.generator import render_scene
from repro.exceptions import StorageError
from repro.index.faults import FaultPlan, SimulatedCrash, fault_injecting_store
from repro.index.pagestore import sniff_page_format

PARAMS = ExtractionParameters(window_min=16, window_max=32, stride=8)


@pytest.fixture
def v2_db(tmp_path):
    """A checkpointed database in the legacy v2 (pickled) format."""
    directory = str(tmp_path / "db")
    database = WalrusDatabase.create(directory, params=PARAMS, page_format=2)
    database.add_images([
        render_scene(label, seed=seed, name=f"{label}-{seed}")
        for seed, label in enumerate(["flowers", "ocean", "sunset"])])
    database.close()
    return directory


@pytest.fixture
def query_image():
    return render_scene("flowers", seed=123, name="probe")


def fingerprint(directory, query_image):
    """Exact match tuples + commit generation, via a readonly open
    (a writable open would advance the generation on close)."""
    database = WalrusDatabase.open(directory, readonly=True)
    try:
        result = database.query(query_image, QueryParameters(epsilon=0.085))
        matches = [(match.image_id, match.name, match.similarity)
                   for match in result.matches]
        return matches, database.index.store.generation
    finally:
        database.close()


def page_path(directory):
    return os.path.join(directory, WalrusDatabase.PAGE_FILE)


class TestRoundTrip:
    def test_v2_v3_v2_is_invisible_to_queries(self, v2_db, query_image):
        reference, generation = fingerprint(v2_db, query_image)
        assert reference  # a vacuous fingerprint proves nothing

        up = migrate_database(v2_db, to_format=3)
        assert up["ok"] is True
        assert (up["source_format"], up["target_format"]) == (2, 3)
        assert up["pages"] > 0
        assert sniff_page_format(page_path(v2_db)) == 3
        assert fingerprint(v2_db, query_image) == (reference, generation)

        down = migrate_database(v2_db, to_format=2)
        assert down["ok"] is True
        assert (down["source_format"], down["target_format"]) == (3, 2)
        assert down["pages"] == up["pages"]
        assert sniff_page_format(page_path(v2_db)) == 2
        assert fingerprint(v2_db, query_image) == (reference, generation)

    def test_default_target_is_v3(self, v2_db):
        summary = migrate_database(v2_db)
        assert summary["target_format"] == 3
        assert sniff_page_format(page_path(v2_db)) == 3

    def test_summary_is_json_serializable(self, v2_db):
        summary = migrate_database(v2_db, to_format=3)
        assert json.loads(json.dumps(summary)) == summary
        assert summary["directory"] == v2_db
        assert summary["checked"] is True
        assert summary["generation"] >= 0
        assert summary["backup_path"] is None

    def test_keep_backup_preserves_v2_original(self, v2_db, query_image):
        reference, _ = fingerprint(v2_db, query_image)
        summary = migrate_database(v2_db, to_format=3, keep_backup=True)
        backup = summary["backup_path"]
        assert backup is not None and backup.endswith(".v2.bak")
        assert os.path.exists(backup)
        assert sniff_page_format(backup) == 2
        # The backup is the byte-for-byte pre-migration page file: put
        # it back and the database must answer exactly as before.
        os.replace(backup, page_path(v2_db))
        assert fingerprint(v2_db, query_image)[0] == reference

    def test_check_can_be_skipped(self, v2_db):
        summary = migrate_database(v2_db, to_format=3, check=False)
        assert summary["checked"] is False
        assert summary["ok"] is True
        assert "fsck_issues" not in summary


class TestErrors:
    def test_already_target_format(self, v2_db):
        with pytest.raises(StorageError, match="already a v2"):
            migrate_database(v2_db, to_format=2)

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(StorageError, match="not a directory"):
            migrate_database(str(tmp_path / "nope"))

    def test_directory_without_database(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(StorageError, match="missing page file"):
            migrate_database(str(empty))

    def test_failed_migration_leaves_original_intact(self, v2_db,
                                                     query_image):
        reference = fingerprint(v2_db, query_image)
        with pytest.raises(StorageError, match="already a v2"):
            migrate_database(v2_db, to_format=2)
        assert sniff_page_format(page_path(v2_db)) == 2
        assert fingerprint(v2_db, query_image) == reference


class TestCli:
    def test_cli_round_trip_with_fsck(self, v2_db, query_image, capsys):
        reference = fingerprint(v2_db, query_image)
        assert main(["migrate", v2_db, "--to-format", "3"]) == 0
        assert "v2 -> v3" in capsys.readouterr().out
        assert main(["fsck", v2_db]) == 0
        capsys.readouterr()
        assert main(["migrate", v2_db, "--to-format", "2", "--json"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["ok"] is True
        assert printed["source_format"] == 3
        assert fingerprint(v2_db, query_image) == reference


class TestMigratedV3:
    def test_fsck_clean_and_cold_query_pickle_free(self, v2_db, query_image,
                                                   monkeypatch):
        migrate_database(v2_db, to_format=3)
        assert main(["fsck", v2_db]) == 0
        # buffer_pages=1 keeps every node read cold; open() itself may
        # unpickle the catalog, so the tripwire arms only afterwards.
        database = WalrusDatabase.open(v2_db, buffer_pages=1, readonly=True)
        try:
            def forbidden(*args, **kwargs):  # pragma: no cover
                raise AssertionError("v3 query path called pickle.loads")

            monkeypatch.setattr(pickle, "loads", forbidden)
            result = database.query(query_image,
                                    QueryParameters(epsilon=0.085))
            assert result.matches
        finally:
            database.close()

    @pytest.mark.faults
    def test_migrated_v3_survives_read_fault_sweep(self, v2_db, query_image):
        migrate_database(v2_db, to_format=3)
        # Transient mapped-read errors must be retried away ...
        plan = FaultPlan(read_error_schedule=(1, 3))
        store = fault_injecting_store(page_path(v2_db), plan=plan,
                                      readonly=True)
        database = WalrusDatabase.open(v2_db, store=store, readonly=True)
        try:
            result = database.query(query_image,
                                    QueryParameters(epsilon=0.085))
            assert result.matches
            assert plan.read_ops > 0
        finally:
            database.close()
        # ... while a crash mid-read surfaces as the simulated crash,
        # never as silent wrong answers.
        crash_plan = FaultPlan()
        store = fault_injecting_store(page_path(v2_db), plan=crash_plan,
                                      readonly=True)
        database = WalrusDatabase.open(v2_db, store=store, readonly=True)
        try:
            crash_plan.crashed = True
            with pytest.raises(SimulatedCrash):
                database.query(query_image, QueryParameters(epsilon=0.085))
        finally:
            crash_plan.crashed = False
            database.close()
