"""Tests for the image-matching algorithms (Section 5.5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap import CoverageBitmap
from repro.core.matching import exact_match, greedy_match, quick_match
from repro.core.regions import Region, RegionSignature
from repro.exceptions import ParameterError

SIZE = 64
GRID = 8


def region(windows: list[tuple[int, int, int]]) -> Region:
    """A region over a 64x64 image covering the given windows."""
    return Region(
        signature=RegionSignature.from_centroid(np.zeros(2)),
        bitmap=CoverageBitmap.from_windows(SIZE, SIZE, GRID, windows),
        window_count=len(windows),
        cluster_radius=0.0,
    )


def quadrant_regions() -> list[Region]:
    """Four disjoint 32x32 quadrant regions."""
    return [region([(0, 0, 32)]), region([(0, 32, 32)]),
            region([(32, 0, 32)]), region([(32, 32, 32)])]


class TestQuickMatch:
    def test_no_pairs(self):
        outcome = quick_match(quadrant_regions(), quadrant_regions(), [])
        assert outcome.similarity == 0.0
        assert outcome.pairs == ()

    def test_single_pair(self):
        outcome = quick_match(quadrant_regions(), quadrant_regions(),
                              [(0, 0)])
        # One quadrant covered on each side: (1024+1024)/(4096+4096).
        assert outcome.similarity == pytest.approx(0.25)

    def test_full_cover(self):
        pairs = [(i, i) for i in range(4)]
        outcome = quick_match(quadrant_regions(), quadrant_regions(), pairs)
        assert outcome.similarity == pytest.approx(1.0)

    def test_repeated_regions_allowed(self):
        """The quick metric's known inflation: one query region matching
        many target regions counts all the target coverage."""
        outcome = quick_match(quadrant_regions(), quadrant_regions(),
                              [(0, 0), (0, 1), (0, 2), (0, 3)])
        # Query side: one quadrant; target side: everything.
        assert outcome.query_covered == 1024
        assert outcome.target_covered == 4096
        assert outcome.similarity == pytest.approx((1024 + 4096) / 8192)

    def test_area_mode_query(self):
        outcome = quick_match(quadrant_regions(), quadrant_regions(),
                              [(0, 0)], area_mode="query")
        assert outcome.similarity == pytest.approx(1024 / 4096)

    def test_area_mode_smaller(self):
        outcome = quick_match(quadrant_regions(), quadrant_regions(),
                              [(0, 0)], area_mode="smaller")
        assert outcome.similarity == pytest.approx(2048 / (2 * 4096))

    def test_unknown_area_mode(self):
        with pytest.raises(ParameterError):
            quick_match(quadrant_regions(), quadrant_regions(), [(0, 0)],
                        area_mode="weird")


class TestGreedyMatch:
    def test_one_to_one_enforced(self):
        outcome = greedy_match(quadrant_regions(), quadrant_regions(),
                               [(0, 0), (0, 1), (0, 2), (0, 3)])
        # Only one pair can use query region 0.
        assert len(outcome.pairs) == 1
        assert outcome.query_covered == 1024
        assert outcome.target_covered == 1024

    def test_picks_largest_marginal_first(self):
        query = [region([(0, 0, 32)]), region([(0, 0, 16)])]
        target = [region([(0, 0, 32)]), region([(0, 0, 16)])]
        outcome = greedy_match(query, target, [(0, 0), (1, 1)])
        assert outcome.pairs[0] == (0, 0)

    def test_equals_exact_on_disjoint_regions(self):
        """With disjoint regions greedy is optimal."""
        pairs = [(0, 0), (1, 1), (2, 2), (3, 3), (0, 1), (2, 0)]
        greedy = greedy_match(quadrant_regions(), quadrant_regions(), pairs)
        exact = exact_match(quadrant_regions(), quadrant_regions(), pairs)
        assert greedy.similarity == pytest.approx(exact.similarity)

    def test_duplicate_pairs_deduped(self):
        outcome = greedy_match(quadrant_regions(), quadrant_regions(),
                               [(0, 0), (0, 0), (0, 0)])
        assert outcome.pairs == ((0, 0),)

    def test_no_pairs(self):
        assert greedy_match(quadrant_regions(), quadrant_regions(),
                            []).similarity == 0.0

    def test_never_exceeds_quick(self):
        """Greedy's one-to-one constraint can only reduce coverage
        relative to the relaxed quick metric."""
        pairs = [(0, 0), (0, 1), (1, 1), (2, 3), (3, 3)]
        quick = quick_match(quadrant_regions(), quadrant_regions(), pairs)
        greedy = greedy_match(quadrant_regions(), quadrant_regions(), pairs)
        assert greedy.similarity <= quick.similarity + 1e-12


class TestExactMatch:
    def test_beats_or_ties_greedy(self):
        """Construct a case where greedy is suboptimal: taking the big
        overlapping pair first blocks two disjoint pairs."""
        big_q = region([(0, 0, 32), (0, 32, 32)])       # top half
        left_q = region([(0, 0, 32)])
        right_q = region([(0, 32, 32)])
        query = [big_q, left_q, right_q]
        big_t = region([(0, 0, 32), (0, 32, 32)])
        left_t = region([(0, 0, 32)])
        right_t = region([(0, 32, 32)])
        target = [big_t, left_t, right_t]
        # Pairs: big-big (covers top half both sides), but also
        # left-big, right-... chosen so exact can split better.
        pairs = [(0, 1), (1, 0), (2, 2)]
        greedy = greedy_match(query, target, pairs)
        exact = exact_match(query, target, pairs)
        assert exact.similarity >= greedy.similarity - 1e-12

    def test_respects_one_to_one(self):
        exact = exact_match(quadrant_regions(), quadrant_regions(),
                            [(0, 0), (0, 1)])
        assert len(exact.pairs) == 1

    def test_too_many_pairs_rejected(self):
        pairs = [(i % 4, j % 4) for i in range(6) for j in range(4)]
        with pytest.raises(ParameterError):
            exact_match(quadrant_regions(), quadrant_regions(), pairs,
                        max_pairs=10)

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=20, deadline=None)
    def test_exact_upper_bounds_greedy_property(self, seed):
        """On random instances: exact >= greedy >= 0, both one-to-one."""
        rng = np.random.default_rng(seed)
        def random_regions(count):
            out = []
            for _ in range(count):
                row = int(rng.integers(0, 32))
                col = int(rng.integers(0, 32))
                size = int(rng.integers(8, 32))
                out.append(region([(row, col, min(size, 64 - max(row, col)))]))
            return out
        query = random_regions(4)
        target = random_regions(4)
        pairs = list({(int(rng.integers(4)), int(rng.integers(4)))
                      for _ in range(6)})
        greedy = greedy_match(query, target, pairs)
        exact = exact_match(query, target, pairs)
        assert exact.similarity >= greedy.similarity - 1e-12
        assert len({q for q, _ in exact.pairs}) == len(exact.pairs)
        assert len({t for _, t in exact.pairs}) == len(exact.pairs)

    def test_known_optimum(self):
        """Greedy picks the single big pair (gain 3q+3q) over two
        disjoint pairs; exact must find the better split when it
        exists."""
        # Query regions: A covers quadrants 1+2, B covers 1, C covers 2.
        a_q = region([(0, 0, 32), (0, 32, 32), (32, 0, 32)])  # 3 quadrants
        b_q = region([(0, 0, 32)])
        c_q = region([(0, 32, 32)])
        d_q = region([(32, 0, 32)])
        query = [a_q, b_q, c_q, d_q]
        a_t = region([(0, 0, 32), (0, 32, 32), (32, 0, 32)])
        b_t = region([(0, 0, 32)])
        c_t = region([(0, 32, 32)])
        d_t = region([(32, 0, 32)])
        target = [a_t, b_t, c_t, d_t]
        # a can only pair with b_t; then b,c,d pair with a_t? No:
        # pairs force competition for a:
        pairs = [(0, 0), (1, 0), (2, 0), (3, 0), (0, 1)]
        exact = exact_match(query, target, pairs)
        # Optimum: (0,0) uses both big regions: 3+3 quadrants.
        assert exact.query_covered + exact.target_covered == 6 * 1024
