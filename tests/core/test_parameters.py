"""Tests for extraction and query parameter validation."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    PAPER_EXTRACTION,
    PAPER_QUERY,
    ExtractionParameters,
    QueryParameters,
)
from repro.exceptions import ParameterError


class TestExtractionParameters:
    def test_paper_defaults(self):
        # Section 6.4's exact experimental setting.
        assert PAPER_EXTRACTION.color_space == "ycc"
        assert PAPER_EXTRACTION.signature_size == 2
        assert PAPER_EXTRACTION.window_min == 64
        assert PAPER_EXTRACTION.window_max == 64
        assert PAPER_EXTRACTION.cluster_threshold == 0.05
        assert PAPER_EXTRACTION.signature_mode == "centroid"
        assert PAPER_EXTRACTION.bitmap_grid == 16

    def test_feature_dimensions(self):
        assert PAPER_EXTRACTION.feature_dimensions == 12  # 3 * 2^2
        gray = ExtractionParameters(color_space="gray", signature_size=4,
                                    window_min=8, window_max=8)
        assert gray.feature_dimensions == 16

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(window_min=48, window_max=64)
        with pytest.raises(ParameterError):
            ExtractionParameters(stride=3)
        with pytest.raises(ParameterError):
            ExtractionParameters(signature_size=3)

    def test_rejects_inverted_window_range(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(window_min=64, window_max=32)

    def test_rejects_signature_bigger_than_window(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(signature_size=16, window_min=8,
                                 window_max=64)

    def test_rejects_unknown_color_space(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(color_space="cmyk")

    def test_rejects_negative_threshold(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(cluster_threshold=-0.01)

    def test_rejects_unknown_signature_mode(self):
        with pytest.raises(ParameterError):
            ExtractionParameters(signature_mode="medoid")

    def test_with_updates_and_validates(self):
        updated = PAPER_EXTRACTION.with_(window_min=16)
        assert updated.window_min == 16
        assert PAPER_EXTRACTION.window_min == 64  # original untouched
        with pytest.raises(ParameterError):
            PAPER_EXTRACTION.with_(window_min=48)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_EXTRACTION.stride = 4


class TestQueryParameters:
    def test_paper_defaults(self):
        assert PAPER_QUERY.epsilon == 0.085
        assert PAPER_QUERY.matching == "quick"
        assert PAPER_QUERY.area_mode == "both"

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ParameterError):
            QueryParameters(epsilon=-0.1)

    def test_rejects_bad_tau(self):
        with pytest.raises(ParameterError):
            QueryParameters(tau=1.5)

    def test_rejects_unknown_matching(self):
        with pytest.raises(ParameterError):
            QueryParameters(matching="hungarian")

    def test_rejects_unknown_area_mode(self):
        with pytest.raises(ParameterError):
            QueryParameters(area_mode="union")

    def test_rejects_bad_max_results(self):
        with pytest.raises(ParameterError):
            QueryParameters(max_results=0)

    def test_rejects_bad_metric(self):
        with pytest.raises(ParameterError):
            QueryParameters(metric="cosine")

    def test_with_updates(self):
        updated = PAPER_QUERY.with_(epsilon=0.05, matching="greedy")
        assert updated.epsilon == 0.05
        assert updated.matching == "greedy"
