"""The redesigned WalrusDatabase lifecycle API.

Covers create/open round-trips (memory, directory, legacy snapshot),
context-manager close, the DatabaseClosedError guard, and the four
deprecated 0.x shims.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.core.results import QueryResult, RegionMatch
from repro.datasets.generator import render_scene
from repro.exceptions import (DatabaseClosedError, DatabaseError,
                              InvalidParameterError)

PARAMS = ExtractionParameters(window_min=16, window_max=32, stride=8)


@pytest.fixture(scope="module")
def scenes():
    return [render_scene(label, seed=seed, name=f"{label}-{seed}")
            for seed, label in enumerate(
                ["flowers", "flowers", "ocean", "sunset"])]


@pytest.fixture(scope="module")
def query_image():
    return render_scene("flowers", seed=4242, name="query")


class TestCreate:
    def test_create_in_memory(self, scenes, query_image):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes)
        result = database.query(query_image)
        assert isinstance(result, QueryResult)
        assert len(database) == len(scenes)

    def test_create_defaults(self):
        database = WalrusDatabase.create()
        assert len(database) == 0
        assert database.params == ExtractionParameters()

    def test_create_directory_roundtrip(self, tmp_path, scenes,
                                        query_image):
        directory = str(tmp_path / "db")
        with WalrusDatabase.create(directory, params=PARAMS) as database:
            database.add_images(scenes)
            database.checkpoint()
            before = database.query(query_image).names()
        with WalrusDatabase.open(directory) as reopened:
            assert len(reopened) == len(scenes)
            assert reopened.query(query_image).names() == before

    def test_create_refuses_existing_directory(self, tmp_path):
        directory = str(tmp_path / "db")
        WalrusDatabase.create(directory, params=PARAMS).close()
        with pytest.raises(DatabaseError):
            WalrusDatabase.create(directory, params=PARAMS)

    def test_open_missing_path(self, tmp_path):
        with pytest.raises(DatabaseError):
            WalrusDatabase.open(str(tmp_path / "nothing"))

    def test_open_snapshot_file(self, tmp_path, scenes, query_image):
        snapshot = str(tmp_path / "snap.pickle")
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes)
        before = database.query(query_image).names()
        database._write_snapshot(snapshot)
        restored = WalrusDatabase.open(snapshot)
        assert restored.query(query_image).names() == before

    def test_open_snapshot_rejects_store(self, tmp_path, scenes):
        snapshot = str(tmp_path / "snap.pickle")
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes[:1])
        database._write_snapshot(snapshot)
        with pytest.raises(InvalidParameterError):
            WalrusDatabase.open(snapshot, store=object())


class TestContextManager:
    def test_with_block_closes(self, tmp_path):
        with WalrusDatabase.create(str(tmp_path / "db"),
                                   params=PARAMS) as database:
            assert not database.closed
        assert database.closed

    def test_close_is_idempotent(self):
        database = WalrusDatabase.create(params=PARAMS)
        database.close()
        database.close()
        assert database.closed

    def test_closed_database_rejects_operations(self, scenes, query_image):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes[:1])
        database.close()
        with pytest.raises(DatabaseClosedError):
            database.add_image(scenes[0])
        with pytest.raises(DatabaseClosedError):
            database.add_images(scenes)
        with pytest.raises(DatabaseClosedError):
            database.query(query_image)
        with pytest.raises(DatabaseClosedError):
            database.query_scene(query_image, 0, 0, 16, 16)
        with pytest.raises(DatabaseClosedError):
            database.nearest_regions(query_image)
        with pytest.raises(DatabaseClosedError):
            database.remove_image(0)
        with pytest.raises(DatabaseClosedError):
            database.describe()

    def test_closed_error_is_database_error(self):
        # Existing except DatabaseError handlers keep working.
        assert issubclass(DatabaseClosedError, DatabaseError)


class TestDeprecatedShims:
    def test_create_on_disk_warns_and_works(self, tmp_path):
        directory = str(tmp_path / "db")
        with pytest.warns(DeprecationWarning, match="create_on_disk"):
            database = WalrusDatabase.create_on_disk(directory, PARAMS)
        database.close()
        assert WalrusDatabase.open(directory).closed is False

    def test_open_on_disk_warns_and_works(self, tmp_path):
        directory = str(tmp_path / "db")
        WalrusDatabase.create(directory, params=PARAMS).close()
        with pytest.warns(DeprecationWarning, match="open_on_disk"):
            database = WalrusDatabase.open_on_disk(directory)
        database.close()

    def test_save_load_warn_and_roundtrip(self, tmp_path, scenes,
                                          query_image):
        snapshot = str(tmp_path / "snap.pickle")
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes)
        before = database.query(query_image).names()
        with pytest.warns(DeprecationWarning, match="save"):
            database.save(snapshot)
        with pytest.warns(DeprecationWarning, match="load"):
            restored = WalrusDatabase.load(snapshot)
        assert restored.query(query_image).names() == before

    def test_new_entry_points_do_not_warn(self, tmp_path):
        directory = str(tmp_path / "db")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            WalrusDatabase.create(directory, params=PARAMS).close()
            WalrusDatabase.open(directory).close()


class TestTypedResults:
    def test_nearest_regions_returns_region_matches(self, scenes,
                                                    query_image):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes)
        matches = database.nearest_regions(query_image, k=2)
        assert matches
        assert all(isinstance(match, RegionMatch) for match in matches)
        assert [m.distance for m in matches] == sorted(
            m.distance for m in matches)

    def test_nearest_regions_validates_k(self, scenes, query_image):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes[:1])
        with pytest.raises(InvalidParameterError):
            database.nearest_regions(query_image, k=0)

    def test_image_match_pairs_property(self, scenes, query_image):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes)
        result = database.query(query_image,
                                QueryParameters(epsilon=0.085))
        assert result.matches
        best = result.matches[0]
        assert best.pairs == best.outcome.pairs
        assert all(len(pair) == 2 for pair in best.pairs)
