"""The parallel extraction pipeline and batched/bulk ingest.

The load-bearing guarantees: parallel extraction is byte-identical to
serial, STR-bulk-built databases equal incrementally-built ones on
``verify()`` and on query results, and the pipeline's lifecycle and
parameter validation behave.
"""

from __future__ import annotations

import pytest

from repro.core.database import WalrusDatabase
from repro.core.extraction import RegionExtractor
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.core.pipeline import (ExtractionPipeline, extract_regions_many,
                                 resolve_chunk_size)
from repro.datasets.generator import render_scene
from repro.exceptions import (DatabaseError, InvalidParameterError,
                              PipelineError)

PARAMS = ExtractionParameters(window_min=16, window_max=32, stride=8)


@pytest.fixture(scope="module")
def scenes():
    return [render_scene(label, seed=seed, name=f"{label}-{seed}")
            for seed, label in enumerate(
                ["flowers", "ocean", "sunset", "forest", "night_sky"])]


@pytest.fixture(scope="module")
def query_image():
    return render_scene("flowers", seed=977, name="query")


def region_fingerprints(regions):
    return [(region.signature.lower.tobytes(),
             region.signature.upper.tobytes(),
             region.bitmap.blocks.tobytes(),
             region.window_count) for region in regions]


class TestExtractionPipeline:
    def test_parallel_matches_serial_exactly(self, scenes):
        serial = [RegionExtractor(PARAMS).extract(image)
                  for image in scenes]
        parallel = extract_regions_many(scenes, PARAMS, workers=2,
                                        chunk_size=2)
        assert len(parallel) == len(serial)
        for expected, actual in zip(serial, parallel):
            assert region_fingerprints(actual) == region_fingerprints(
                expected)

    def test_single_worker_runs_in_process(self, scenes):
        with ExtractionPipeline(PARAMS, workers=1) as pipeline:
            results = pipeline.extract_many(scenes[:2])
        assert len(results) == 2
        assert pipeline._pool is None  # never forked

    def test_pool_is_reused_across_batches(self, scenes):
        with ExtractionPipeline(PARAMS, workers=2) as pipeline:
            first = pipeline.extract_many(scenes[:2])
            pool = pipeline._pool
            second = pipeline.extract_many(scenes[2:])
            assert pipeline._pool is pool
        assert len(first) == 2 and len(second) == 3

    def test_empty_batch(self):
        with ExtractionPipeline(PARAMS, workers=2) as pipeline:
            assert pipeline.extract_many([]) == []

    def test_closed_pipeline_raises(self, scenes):
        pipeline = ExtractionPipeline(PARAMS, workers=1)
        pipeline.close()
        with pytest.raises(PipelineError):
            pipeline.extract_many(scenes[:1])

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            ExtractionPipeline(PARAMS, workers=0)
        with pytest.raises(InvalidParameterError):
            ExtractionPipeline(PARAMS, chunk_size=0)
        with pytest.raises(InvalidParameterError):
            resolve_chunk_size(10, 2, chunk_size=-1)

    def test_chunk_size_heuristic(self):
        assert resolve_chunk_size(0, 4) == 1
        assert resolve_chunk_size(100, 4) == 100 // 16 + 1
        assert resolve_chunk_size(10_000, 4) == 32  # capped
        assert resolve_chunk_size(100, 4, chunk_size=7) == 7


class TestBatchedIngest:
    def test_parallel_ingest_identical_to_serial(self, scenes,
                                                 query_image):
        serial = WalrusDatabase.create(params=PARAMS)
        serial.add_images(scenes, bulk=False)
        pooled = WalrusDatabase.create(params=PARAMS)
        pooled.add_images(scenes, bulk=False, workers=2, chunk_size=2)

        assert len(pooled) == len(serial)
        assert pooled.region_count == serial.region_count
        for image_id in serial.images:
            assert region_fingerprints(
                pooled.images[image_id].regions) == region_fingerprints(
                serial.images[image_id].regions)
        qp = QueryParameters(epsilon=0.085)
        assert ([(m.name, m.similarity) for m in pooled.query(
            query_image, qp)]
            == [(m.name, m.similarity) for m in serial.query(
                query_image, qp)])

    def test_bulk_equals_incremental(self, scenes, query_image):
        incremental = WalrusDatabase.create(params=PARAMS)
        incremental.add_images(scenes, bulk=False)
        bulk = WalrusDatabase.create(params=PARAMS)
        bulk.add_images(scenes, bulk=True)

        assert bulk.index.verify() == []
        assert incremental.index.verify() == []
        bulk.index.check_invariants()
        assert len(bulk.index) == len(incremental.index)
        qp = QueryParameters(epsilon=0.085)
        assert ([(m.name, m.similarity) for m in bulk.query(
            query_image, qp)]
            == [(m.name, m.similarity) for m in incremental.query(
                query_image, qp)])

    def test_default_is_bulk_on_fresh_database(self, scenes):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes)
        # A bulk-built tree over ~5 images is shallower than repeated
        # insertion would typically leave it, but the reliable signal
        # is simply that verify() is clean and the count matches.
        assert database.index.verify() == []
        assert database.region_count == sum(
            len(record.regions) for record in database.images.values())

    def test_default_is_incremental_on_populated_database(self, scenes):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes[:2])
        database.add_images(scenes[2:])  # auto: must not demand bulk
        assert len(database) == len(scenes)
        assert database.index.verify() == []

    def test_explicit_bulk_on_populated_database_fails(self, scenes):
        database = WalrusDatabase.create(params=PARAMS)
        database.add_images(scenes[:1])
        with pytest.raises(DatabaseError):
            database.add_images(scenes[1:], bulk=True)

    def test_bulk_on_disk_leaves_no_orphans(self, tmp_path, scenes):
        directory = str(tmp_path / "db")
        with WalrusDatabase.create(directory, params=PARAMS) as database:
            database.add_images(scenes)  # auto-bulk over the file store
            database.checkpoint()
            assert database.index.verify() == []
        with WalrusDatabase.open(directory) as reopened:
            assert reopened.index.verify() == []
            assert len(reopened) == len(scenes)
