"""The batched query API: ``WalrusDatabase.query_batch``.

A batch shares one probe table across its items, so overlapping
queries (duplicate images, ``tau``/``max_results`` sweeps over one
image) reuse each other's R*-tree walks.  These tests pin the two
contracts the batch endpoint is built on: results are *identical* to
the one-at-a-time path, and per-item failures either raise eagerly or
surface in place under ``return_exceptions=True``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.database import WalrusDatabase
from repro.core.parameters import QueryParameters
from repro.core.results import QueryResult
from repro.exceptions import InvalidParameterError, WalrusError
from repro.observability import Deadline


@pytest.fixture
def db(fast_params, flower_factory):
    database = WalrusDatabase(fast_params)
    database.add_images([flower_factory(cx=16, name="left"),
                         flower_factory(cx=40, name="right"),
                         flower_factory(cx=28, name="middle")])
    yield database
    database.close()


@pytest.fixture
def probe(flower_factory):
    return flower_factory(cx=18, name="probe")


def match_tuples(result):
    return [(match.image_id, match.name, match.similarity)
            for match in result.matches]


class TestResultsMatchSerialPath:
    def test_batch_equals_independent_queries(self, db, probe,
                                              flower_factory):
        other = flower_factory(cx=38, name="other-probe")
        serial = [db.query(probe), db.query(other)]
        batch = db.query_batch([probe, other])
        assert len(batch) == 2
        for one, many in zip(serial, batch):
            assert match_tuples(one) == match_tuples(many)

    def test_per_item_parameters_are_honoured(self, db, probe):
        sweep = [QueryParameters(tau=0.0), QueryParameters(tau=0.99)]
        loose, strict = db.query_batch([probe, probe], sweep)
        assert len(loose.matches) >= len(strict.matches)
        assert match_tuples(loose) == match_tuples(db.query(probe, sweep[0]))
        assert match_tuples(strict) == match_tuples(db.query(probe, sweep[1]))

    def test_single_params_broadcast_to_all_items(self, db, probe):
        qp = QueryParameters(max_results=1)
        results = db.query_batch([probe, probe, probe], qp)
        assert all(len(result.matches) <= 1 for result in results)

    def test_empty_batch_returns_empty_list(self, db):
        assert db.query_batch([]) == []


class TestProbeSharing:
    def test_duplicate_items_share_probes(self, db, probe):
        first, second = db.query_batch([probe, probe], explain=True)
        assert second.report is not None
        # Every one of the second item's regions rides the first
        # item's tree walks; none are executed fresh.
        assert second.report.probe.probes_shared > 0
        assert second.report.probe.probes_executed == 0
        assert match_tuples(first) == match_tuples(second)

    def test_sharing_works_with_probe_cache_disabled(self, fast_params,
                                                     flower_factory,
                                                     probe):
        database = WalrusDatabase(fast_params, probe_cache=0)
        database.add_images([flower_factory(cx=16, name="only")])
        try:
            _, second = database.query_batch([probe, probe], explain=True)
            assert second.report is not None
            assert second.report.probe.probes_shared > 0
            assert second.report.probe.probe_cache_hits == 0
        finally:
            database.close()

    def test_different_epsilon_never_shares(self, db, probe):
        sweep = [QueryParameters(epsilon=0.05), QueryParameters(epsilon=0.2)]
        _, second = db.query_batch([probe, probe], sweep, explain=True)
        assert second.report is not None
        assert second.report.probe.probes_shared == 0

    def test_explain_broadcasts_per_item(self, db, probe):
        plain, explained = db.query_batch([probe, probe],
                                          explain=[False, True])
        assert plain.report is None
        assert explained.report is not None


class TestFailureModes:
    def test_first_failure_raises_by_default(self, db, probe):
        bad = QueryParameters(epsilon=0.1, refine_epsilon=0.05)
        with pytest.raises(WalrusError, match="refine_epsilon"):
            db.query_batch([probe, probe], [bad, None])

    def test_return_exceptions_keeps_the_batch_running(self, db, probe):
        bad = QueryParameters(epsilon=0.1, refine_epsilon=0.05)
        results = db.query_batch([probe, probe, probe], [None, bad, None],
                                 return_exceptions=True)
        assert isinstance(results[0], QueryResult)
        assert isinstance(results[1], WalrusError)
        assert isinstance(results[2], QueryResult)
        assert match_tuples(results[0]) == match_tuples(results[2])

    def test_wrong_length_option_sequence_rejected(self, db, probe):
        with pytest.raises(InvalidParameterError,
                           match="query_params has 1 entries"):
            db.query_batch([probe, probe], [QueryParameters()])
        with pytest.raises(InvalidParameterError,
                           match="max_regions has 3 entries"):
            db.query_batch([probe, probe], max_regions=[5, 5, 5])
        with pytest.raises(InvalidParameterError,
                           match="explain has 0 entries"):
            db.query_batch([probe, probe], explain=[])

    def test_expired_deadline_spans_the_batch(self, db, probe):
        deadline = Deadline(1e-9)
        time.sleep(0.001)  # already expired before the first item runs
        results = db.query_batch([probe, probe], deadline=deadline,
                                 return_exceptions=True)
        assert all(isinstance(result, WalrusError) for result in results)
