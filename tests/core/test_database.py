"""Tests for the WALRUS database (indexing, querying, persistence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import WalrusDatabase
from repro.core.parameters import ExtractionParameters, QueryParameters
from repro.exceptions import DatabaseError
from repro.imaging.image import Image
from repro.index.storage import FilePageStore


@pytest.fixture
def params() -> ExtractionParameters:
    return ExtractionParameters(window_min=16, window_max=32, stride=8)


def solid(color, name: str, size=(64, 64)) -> Image:
    pixels = np.empty(size + (3,))
    pixels[:] = color
    return Image(pixels, "rgb", name)


@pytest.fixture
def small_db(params, flower_factory) -> WalrusDatabase:
    database = WalrusDatabase(params)
    database.add_images([
        flower_factory(64, 64, cy=32, cx=32, radius=18,
                       name="flower-center"),
        flower_factory(64, 96, cy=24, cx=70, radius=12,
                       name="flower-off"),
        solid((0.1, 0.2, 0.9), "blue"),
        solid((0.9, 0.8, 0.1), "yellow"),
    ])
    return database


class TestIndexing:
    def test_ids_sequential(self, params):
        database = WalrusDatabase(params)
        ids = database.add_images([solid((0.5, 0.5, 0.5), "a"),
                                   solid((0.2, 0.2, 0.2), "b")])
        assert ids == [0, 1]
        assert len(database) == 2

    def test_region_count_tracks_index(self, small_db):
        assert small_db.region_count == len(small_db.index)
        assert small_db.region_count == sum(
            len(record.regions) for record in small_db.images.values())

    def test_unnamed_images_get_ids(self, params, rng):
        database = WalrusDatabase(params)
        image_id = database.add_image(Image(rng.uniform(size=(64, 64, 3))))
        assert database.images[image_id].name == f"image-{image_id}"

    def test_remove_image(self, small_db):
        before = small_db.region_count
        removed_regions = len(small_db.images[0].regions)
        small_db.remove_image(0)
        assert len(small_db) == 3
        assert small_db.region_count == before - removed_regions
        small_db.index.check_invariants()

    def test_remove_missing(self, small_db):
        with pytest.raises(DatabaseError):
            small_db.remove_image(99)

    def test_removed_image_not_retrieved(self, small_db, flower_factory):
        query = flower_factory(64, 64, radius=16, name="q")
        small_db.remove_image(0)
        small_db.remove_image(1)
        result = small_db.query(query, QueryParameters(epsilon=0.05))
        assert "flower-center" not in result.names()
        assert "flower-off" not in result.names()


class TestQuerying:
    def test_flowers_rank_above_solids(self, small_db, flower_factory):
        query = flower_factory(64, 64, cy=40, cx=20, radius=14, name="q")
        result = small_db.query(query)
        names = result.names()
        assert names, "no matches at all"
        assert names[0].startswith("flower")

    def test_empty_database_rejected(self, params, flower_factory):
        with pytest.raises(DatabaseError):
            WalrusDatabase(params).query(flower_factory())

    def test_tau_filters(self, small_db, flower_factory):
        query = flower_factory(64, 64, radius=16)
        everything = small_db.query(query, QueryParameters(tau=0.0))
        strict = small_db.query(query, QueryParameters(tau=0.9))
        assert len(strict) <= len(everything)
        assert all(match.similarity >= 0.9 for match in strict)

    def test_max_results(self, small_db, flower_factory):
        result = small_db.query(flower_factory(),
                                QueryParameters(max_results=1))
        assert len(result) <= 1

    def test_results_sorted_descending(self, small_db, flower_factory):
        result = small_db.query(flower_factory())
        similarities = [match.similarity for match in result]
        assert similarities == sorted(similarities, reverse=True)

    def test_stats_consistency(self, small_db, flower_factory):
        result = small_db.query(flower_factory())
        stats = result.stats
        assert stats.query_regions > 0
        assert stats.candidate_images >= len(result)
        assert stats.elapsed_seconds > 0
        if stats.query_regions:
            assert stats.mean_regions_per_query_region == pytest.approx(
                stats.regions_retrieved / stats.query_regions)

    def test_monotone_in_epsilon(self, small_db, flower_factory):
        """Table 1's trend: larger eps retrieves more regions and more
        candidate images."""
        query = flower_factory(64, 64, cy=28, cx=40, radius=15)
        retrieved = []
        candidates = []
        for epsilon in (0.02, 0.05, 0.085, 0.15):
            stats = small_db.query(
                query, QueryParameters(epsilon=epsilon)).stats
            retrieved.append(stats.regions_retrieved)
            candidates.append(stats.candidate_images)
        assert retrieved == sorted(retrieved)
        assert candidates == sorted(candidates)

    def test_greedy_not_above_quick(self, small_db, flower_factory):
        query = flower_factory(64, 64, radius=16)
        quick = small_db.query(query, QueryParameters(matching="quick"))
        greedy = small_db.query(query, QueryParameters(matching="greedy"))
        quick_sims = {m.name: m.similarity for m in quick}
        for match in greedy:
            assert match.similarity <= quick_sims[match.name] + 1e-12

    def test_bbox_mode_end_to_end(self, params, flower_factory):
        database = WalrusDatabase(params.with_(signature_mode="bbox"))
        database.add_images([
            flower_factory(64, 64, radius=18, name="flower"),
            solid((0.1, 0.2, 0.9), "blue"),
        ])
        result = database.query(flower_factory(64, 96, cy=30, cx=60,
                                               radius=14))
        assert result.names()
        assert result.names()[0] == "flower"

    def test_translation_and_scale_retrieval(self, params, flower_factory):
        """The headline claim: same object, moved and rescaled, is
        retrieved ahead of unrelated images."""
        database = WalrusDatabase(params)
        database.add_images([
            flower_factory(96, 96, cy=70, cx=26, radius=24,
                           name="moved-and-bigger"),
            solid((0.3, 0.6, 0.9), "sky"),
            solid((0.8, 0.2, 0.1), "red-wall"),
        ])
        result = database.query(
            flower_factory(96, 96, cy=30, cx=70, radius=13, name="q"))
        assert result.names()[0] == "moved-and-bigger"


class TestPersistence:
    def test_save_load_roundtrip(self, small_db, flower_factory, tmp_path):
        path = str(tmp_path / "walrus.db")
        query = flower_factory(64, 64, radius=16)
        expected = small_db.query(query).names()
        small_db.save(path)
        loaded = WalrusDatabase.load(path)
        assert len(loaded) == len(small_db)
        assert loaded.query(query).names() == expected

    def test_load_rejects_other_pickles(self, tmp_path):
        import pickle

        path = tmp_path / "junk.db"
        with open(path, "wb") as stream:
            pickle.dump({"not": "a database"}, stream)
        with pytest.raises(DatabaseError):
            WalrusDatabase.load(str(path))

    def test_file_backed_index(self, params, flower_factory, tmp_path):
        store = FilePageStore(tmp_path / "pages.db", buffer_pages=16)
        database = WalrusDatabase(params, store=store)
        database.add_images([
            flower_factory(64, 64, radius=18, name="flower"),
            solid((0.1, 0.2, 0.9), "blue"),
        ])
        result = database.query(flower_factory(64, 64, cy=20, cx=44,
                                               radius=12))
        assert "flower" in result.names()
        store.close()
