"""Tests for region signatures and the Definition 4.1 envelope."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitmap import CoverageBitmap
from repro.core.regions import Region, RegionSignature
from repro.exceptions import ParameterError


class TestRegionSignature:
    def test_centroid_signature_is_point(self):
        signature = RegionSignature.from_centroid(np.array([0.1, 0.2]))
        assert signature.is_point
        np.testing.assert_allclose(signature.centroid, [0.1, 0.2])

    def test_bbox_signature(self):
        signature = RegionSignature.from_bounds(np.array([0.0, 0.0]),
                                                np.array([0.2, 0.4]))
        assert not signature.is_point
        np.testing.assert_allclose(signature.centroid, [0.1, 0.2])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ParameterError):
            RegionSignature.from_bounds(np.array([1.0]), np.array([0.0]))

    def test_point_distance_is_euclidean(self):
        a = RegionSignature.from_centroid(np.array([0.0, 0.0]))
        b = RegionSignature.from_centroid(np.array([3.0, 4.0]))
        assert a.distance(b) == pytest.approx(5.0)

    def test_box_distance_is_gap(self):
        a = RegionSignature.from_bounds(np.array([0.0, 0.0]),
                                        np.array([1.0, 1.0]))
        b = RegionSignature.from_bounds(np.array([4.0, 1.0]),
                                        np.array([5.0, 2.0]))
        assert a.distance(b) == pytest.approx(3.0)  # gap only on axis 0

    def test_overlapping_boxes_distance_zero(self):
        a = RegionSignature.from_bounds(np.array([0.0]), np.array([2.0]))
        b = RegionSignature.from_bounds(np.array([1.0]), np.array([3.0]))
        assert a.distance(b) == 0.0

    def test_distance_symmetric(self, rng):
        a = RegionSignature.from_bounds(*np.sort(rng.uniform(size=(2, 4)),
                                                 axis=0))
        b = RegionSignature.from_bounds(*np.sort(rng.uniform(size=(2, 4)),
                                                 axis=0))
        assert a.distance(b) == pytest.approx(b.distance(a))

    def test_linf_metric(self):
        a = RegionSignature.from_centroid(np.array([0.0, 0.0]))
        b = RegionSignature.from_centroid(np.array([0.3, 0.1]))
        assert a.distance(b, metric="linf") == pytest.approx(0.3)

    def test_unknown_metric(self):
        a = RegionSignature.from_centroid(np.zeros(2))
        with pytest.raises(ParameterError):
            a.distance(a, metric="manhattan")

    def test_matches_definition_4_1(self):
        """Similar iff one signature lies in the other's eps-envelope."""
        a = RegionSignature.from_centroid(np.array([0.0, 0.0]))
        b = RegionSignature.from_centroid(np.array([0.05, 0.0]))
        assert a.matches(b, epsilon=0.05)
        assert not a.matches(b, epsilon=0.04)

    def test_envelope_extension_equivalence_for_boxes(self):
        """For boxes, matching == extended-rectangle overlap (the
        phrasing under Definition 4.1)."""
        a = RegionSignature.from_bounds(np.array([0.0, 0.0]),
                                        np.array([1.0, 1.0]))
        epsilon = 0.3
        for gap in (0.25, 0.35):  # strictly inside / outside the envelope
            b = RegionSignature.from_bounds(np.array([1.0 + gap, 0.5]),
                                            np.array([2.0, 2.0]))
            extended = a.to_rect().expand(epsilon)
            assert a.matches(b, epsilon, metric="linf") == \
                extended.intersects(b.to_rect())

    def test_to_rect(self):
        signature = RegionSignature.from_bounds(np.array([0.1, 0.2]),
                                                np.array([0.3, 0.4]))
        rect = signature.to_rect()
        np.testing.assert_allclose(rect.lower, [0.1, 0.2])
        np.testing.assert_allclose(rect.upper, [0.3, 0.4])


class TestRegion:
    def test_covered_pixels_delegates_to_bitmap(self):
        bitmap = CoverageBitmap.from_windows(64, 64, 8, [(0, 0, 32)])
        region = Region(
            signature=RegionSignature.from_centroid(np.zeros(4)),
            bitmap=bitmap, window_count=5, cluster_radius=0.01,
        )
        assert region.covered_pixels == 32 * 32
