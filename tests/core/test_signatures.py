"""Tests for window feature-vector computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.color.spaces import convert
from repro.core.parameters import ExtractionParameters
from repro.core.signatures import (
    compute_window_set,
    effective_window_range,
)
from repro.exceptions import WaveletError
from repro.imaging.image import Image
from repro.wavelets.haar import haar_2d


class TestEffectiveWindowRange:
    def test_no_clamping_needed(self):
        params = ExtractionParameters(window_min=16, window_max=64)
        assert effective_window_range(params, 128, 128) == (16, 64)

    def test_clamps_to_image(self):
        params = ExtractionParameters(window_min=16, window_max=64)
        assert effective_window_range(params, 40, 128) == (16, 32)

    def test_clamps_both(self):
        params = ExtractionParameters(window_min=64, window_max=64)
        assert effective_window_range(params, 40, 40) == (32, 32)

    def test_raises_when_nothing_fits(self):
        params = ExtractionParameters(signature_size=2, window_min=4,
                                      window_max=8)
        with pytest.raises(WaveletError):
            effective_window_range(params, 1, 1)


class TestComputeWindowSet:
    @pytest.fixture
    def params(self) -> ExtractionParameters:
        return ExtractionParameters(window_min=8, window_max=16, stride=8,
                                    color_space="ycc")

    def test_counts_and_geometry(self, rng, params):
        image = Image(rng.uniform(size=(32, 40, 3)), "rgb")
        window_set = compute_window_set(image, params)
        # Level 8: 4 x 5 positions; level 16: ((32-16)//8+1) x ((40-16)//8+1).
        expected = 4 * 5 + 3 * 4
        assert len(window_set) == expected
        assert window_set.features.shape == (expected, 12)
        assert window_set.geometry.shape == (expected, 3)
        sizes = set(window_set.geometry[:, 2].tolist())
        assert sizes == {8, 16}

    def test_windows_in_bounds(self, rng, params):
        image = Image(rng.uniform(size=(33, 47, 3)), "rgb")
        window_set = compute_window_set(image, params)
        for row, col, size in window_set.geometry:
            assert 0 <= row and row + size <= 33
            assert 0 <= col and col + size <= 47

    def test_features_match_direct_transform(self, rng, params):
        image = Image(rng.uniform(size=(32, 32, 3)), "rgb")
        window_set = compute_window_set(image, params)
        working = convert(image, "ycc")
        for k in range(len(window_set)):
            row, col, size = window_set.geometry[k]
            expected = np.concatenate([
                haar_2d(working.channel(c)[row:row + size,
                                           col:col + size])[:2, :2].reshape(-1)
                for c in range(3)
            ])
            np.testing.assert_allclose(window_set.features[k], expected,
                                       atol=1e-9)

    def test_first_channel_block_is_window_mean_of_luma(self, rng, params):
        """Feature 0 of every window is the window's mean Y value."""
        image = Image(rng.uniform(size=(32, 32, 3)), "rgb")
        window_set = compute_window_set(image, params)
        luma = convert(image, "ycc").channel(0)
        for k in range(0, len(window_set), 7):
            row, col, size = window_set.geometry[k]
            mean = luma[row:row + size, col:col + size].mean()
            assert window_set.features[k, 0] == pytest.approx(mean)

    def test_gray_images_have_s2_features(self, rng):
        params = ExtractionParameters(color_space="gray", window_min=8,
                                      window_max=8, stride=8)
        image = Image(rng.uniform(size=(32, 32, 3)), "rgb")
        window_set = compute_window_set(image, params)
        assert window_set.features.shape[1] == 4

    def test_normalized_signatures_differ_for_s4(self, rng):
        base = ExtractionParameters(window_min=8, window_max=8, stride=8,
                                    signature_size=4)
        image = Image(rng.uniform(size=(32, 32, 3)), "rgb")
        plain = compute_window_set(image, base)
        normalized = compute_window_set(
            image, base.with_(normalize_signatures=True))
        assert not np.allclose(plain.features, normalized.features)

    def test_normalization_is_noop_for_s2(self, rng):
        base = ExtractionParameters(window_min=8, window_max=8, stride=8)
        image = Image(rng.uniform(size=(32, 32, 3)), "rgb")
        plain = compute_window_set(image, base)
        normalized = compute_window_set(
            image, base.with_(normalize_signatures=True))
        np.testing.assert_allclose(plain.features, normalized.features)

    def test_translation_moves_signature_not_value(self, rng):
        """The same texture at two positions yields (near-)identical
        feature vectors at the two corresponding windows — the
        cornerstone of WALRUS's translation robustness."""
        texture = rng.uniform(size=(16, 16, 3))
        canvas_a = np.full((48, 48, 3), 0.5)
        canvas_a[0:16, 0:16] = texture
        canvas_b = np.full((48, 48, 3), 0.5)
        canvas_b[32:48, 32:48] = texture
        params = ExtractionParameters(window_min=16, window_max=16,
                                      stride=16, color_space="rgb")
        set_a = compute_window_set(Image(canvas_a, "rgb"), params)
        set_b = compute_window_set(Image(canvas_b, "rgb"), params)
        idx_a = next(k for k in range(len(set_a))
                     if tuple(set_a.geometry[k][:2]) == (0, 0))
        idx_b = next(k for k in range(len(set_b))
                     if tuple(set_b.geometry[k][:2]) == (32, 32))
        np.testing.assert_allclose(set_a.features[idx_a],
                                   set_b.features[idx_b], atol=1e-9)
