"""Property tests for the matching algorithms' invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap import CoverageBitmap
from repro.core.matching import greedy_match, quick_match
from repro.core.regions import Region, RegionSignature

SIZE = 64
GRID = 8


def random_regions(rng: np.random.Generator, count: int) -> list[Region]:
    regions = []
    for _ in range(count):
        row = int(rng.integers(0, 48))
        col = int(rng.integers(0, 48))
        size = int(rng.integers(4, SIZE - max(row, col)))
        regions.append(Region(
            signature=RegionSignature.from_centroid(np.zeros(2)),
            bitmap=CoverageBitmap.from_windows(SIZE, SIZE, GRID,
                                               [(row, col, size)]),
            window_count=1,
            cluster_radius=0.0,
        ))
    return regions


def random_instance(seed: int):
    rng = np.random.default_rng(seed)
    query = random_regions(rng, int(rng.integers(1, 6)))
    target = random_regions(rng, int(rng.integers(1, 6)))
    pair_count = int(rng.integers(0, 10))
    pairs = [(int(rng.integers(len(query))), int(rng.integers(len(target))))
             for _ in range(pair_count)]
    return query, target, pairs


class TestMatchingInvariants:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=60, deadline=None)
    def test_greedy_is_one_to_one(self, seed):
        query, target, pairs = random_instance(seed)
        outcome = greedy_match(query, target, pairs)
        q_sides = [q for q, _ in outcome.pairs]
        t_sides = [t for _, t in outcome.pairs]
        assert len(q_sides) == len(set(q_sides))
        assert len(t_sides) == len(set(t_sides))
        assert set(outcome.pairs) <= set(pairs)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=60, deadline=None)
    def test_greedy_never_exceeds_quick(self, seed):
        query, target, pairs = random_instance(seed)
        quick = quick_match(query, target, pairs)
        greedy = greedy_match(query, target, pairs)
        assert greedy.similarity <= quick.similarity + 1e-12

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=60, deadline=None)
    def test_similarity_bounds(self, seed):
        query, target, pairs = random_instance(seed)
        for matcher in (quick_match, greedy_match):
            outcome = matcher(query, target, pairs)
            assert 0.0 <= outcome.similarity <= 1.0
            assert outcome.query_covered <= SIZE * SIZE
            assert outcome.target_covered <= SIZE * SIZE

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_quick_is_monotone_in_pairs(self, seed):
        """Adding a pair can only increase the quick similarity."""
        query, target, pairs = random_instance(seed)
        if not pairs:
            return
        subset = quick_match(query, target, pairs[:-1])
        full = quick_match(query, target, pairs)
        assert full.similarity >= subset.similarity - 1e-12

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_matchers_are_deterministic(self, seed):
        query, target, pairs = random_instance(seed)
        for matcher in (quick_match, greedy_match):
            first = matcher(query, target, pairs)
            second = matcher(query, target, pairs)
            assert first.similarity == second.similarity
            assert first.pairs == second.pairs

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_pair_order_does_not_change_quick(self, seed):
        query, target, pairs = random_instance(seed)
        shuffled = list(reversed(pairs))
        assert quick_match(query, target, pairs).similarity == \
            quick_match(query, target, shuffled).similarity
