"""Edge cases for region extraction on awkward image geometries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import WalrusDatabase
from repro.core.extraction import extract_regions
from repro.core.parameters import ExtractionParameters
from repro.exceptions import WaveletError
from repro.imaging.image import Image


class TestAwkwardGeometries:
    def test_image_exactly_one_window(self, rng):
        params = ExtractionParameters(window_min=16, window_max=16,
                                      stride=16)
        image = Image(rng.uniform(size=(16, 16, 3)), "rgb")
        regions = extract_regions(image, params)
        assert len(regions) == 1
        assert regions[0].window_count == 1

    def test_window_larger_than_image_clamps(self, rng):
        """Paper's 85x128 images with 64-minimum windows: the effective
        range clamps to what fits."""
        params = ExtractionParameters(window_min=64, window_max=64,
                                      stride=8)
        image = Image(rng.uniform(size=(40, 128, 3)), "rgb")
        regions = extract_regions(image, params)  # clamped to 32
        assert regions

    def test_image_too_small_raises(self, rng):
        params = ExtractionParameters(window_min=4, window_max=8,
                                      stride=4, signature_size=4)
        with pytest.raises(WaveletError):
            extract_regions(Image(rng.uniform(size=(2, 2, 3)), "rgb"),
                            params)

    def test_misc_sizes_full_pipeline(self, rng, fast_params):
        for height, width in ((85, 128), (96, 128), (128, 85)):
            image = Image(rng.uniform(size=(height, width, 3)), "rgb")
            regions = extract_regions(image, fast_params)
            assert regions
            for region in regions:
                assert region.bitmap.height == height
                assert region.bitmap.width == width

    def test_stride_exceeding_window(self, rng):
        """stride > window: effective per-level stride clamps to w."""
        params = ExtractionParameters(window_min=8, window_max=16,
                                      stride=64)
        image = Image(rng.uniform(size=(32, 32, 3)), "rgb")
        regions = extract_regions(image, params)
        total_windows = sum(region.window_count for region in regions)
        # level 8: 4x4 non-overlapping; level 16: 2x2.
        assert total_windows == 16 + 4

    def test_gray_pipeline_end_to_end(self, rng):
        params = ExtractionParameters(color_space="gray", window_min=16,
                                      window_max=16, stride=8)
        database = WalrusDatabase(params)
        pixels = rng.uniform(size=(64, 64, 3))
        database.add_image(Image(pixels, "rgb", "one"))
        result = database.query(Image(pixels, "rgb", "same"))
        assert result.names() == ["one"]

    def test_every_window_is_in_some_region(self, rng, fast_params):
        image = Image(rng.uniform(size=(48, 48, 3)), "rgb")
        regions = extract_regions(image, fast_params)
        from repro.core.signatures import compute_window_set

        window_set = compute_window_set(image, fast_params)
        assert sum(region.window_count for region in regions) == \
            len(window_set)

    def test_region_bitmaps_union_covers_window_span(self, rng,
                                                     fast_params):
        """The union of all region bitmaps equals the bitmap of all
        windows together — no pixels lost in clustering."""
        from repro.core.bitmap import CoverageBitmap
        from repro.core.signatures import compute_window_set

        image = Image(rng.uniform(size=(48, 64, 3)), "rgb")
        regions = extract_regions(image, fast_params)
        union = CoverageBitmap(48, 64, fast_params.bitmap_grid)
        for region in regions:
            union.union_update(region.bitmap)
        window_set = compute_window_set(image, fast_params)
        all_windows = CoverageBitmap.from_windows(
            48, 64, fast_params.bitmap_grid,
            [(int(r), int(c), int(s)) for r, c, s in window_set.geometry])
        # Union of per-cluster bitmaps covers at least the all-window
        # bitmap blocks (clusters partition the same window set; block
        # thresholding can only make per-cluster coverage smaller).
        assert not (all_windows.blocks & ~union.blocks).all()

    def test_deterministic_across_runs(self, rng, fast_params):
        pixels = rng.uniform(size=(48, 48, 3))
        first = extract_regions(Image(pixels, "rgb"), fast_params)
        second = extract_regions(Image(pixels, "rgb"), fast_params)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.signature.centroid,
                                          b.signature.centroid)
            assert a.bitmap == b.bitmap
