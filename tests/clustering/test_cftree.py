"""Tests for the CF-tree (BIRCH phase 1 structure)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.cftree import CFTree
from repro.exceptions import ClusteringError


def build_tree(points: np.ndarray, threshold: float, *,
               branching: int = 4, max_leaf_entries=None) -> CFTree:
    tree = CFTree(points.shape[1], threshold, branching_factor=branching,
                  max_leaf_entries=max_leaf_entries, track_members=True)
    for index, point in enumerate(points):
        tree.insert(point, point_id=index)
    return tree


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ClusteringError):
            CFTree(2, -0.1)

    def test_rejects_bad_branching(self):
        with pytest.raises(ClusteringError):
            CFTree(2, 0.1, branching_factor=1)

    def test_rejects_bad_growth(self):
        with pytest.raises(ClusteringError):
            CFTree(2, 0.1, growth=1.0)

    def test_rejects_wrong_dimension_point(self):
        tree = CFTree(3, 0.1)
        with pytest.raises(ClusteringError):
            tree.insert(np.zeros(2))


class TestInvariants:
    def test_no_point_lost(self, rng):
        points = rng.uniform(size=(500, 3))
        tree = build_tree(points, threshold=0.1)
        leaves = list(tree.leaf_entries())
        assert sum(cf.count for cf in leaves) == 500
        ids = sorted(i for cf in leaves for i in cf.member_ids)
        assert ids == list(range(500))

    def test_branching_respected(self, rng):
        points = rng.uniform(size=(300, 2))
        tree = build_tree(points, threshold=0.02, branching=4)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node) <= 4
            stack.extend(node.children)

    def test_uniform_leaf_depth(self, rng):
        points = rng.uniform(size=(400, 2))
        tree = build_tree(points, threshold=0.02, branching=4)
        depths = set()

        def walk(node, depth):
            if node.is_leaf:
                depths.add(depth)
            for child in node.children:
                walk(child, depth + 1)

        walk(tree.root, 0)
        assert len(depths) == 1

    def test_internal_summaries_consistent(self, rng):
        points = rng.uniform(size=(300, 3))
        tree = build_tree(points, threshold=0.05, branching=4)

        def walk(node):
            if node.is_leaf:
                return
            for cf, child in zip(node.entries, node.children):
                child_count = sum(e.count for e in child.entries)
                assert cf.count == child_count
                child_ls = sum(e.linear_sum for e in child.entries)
                np.testing.assert_allclose(cf.linear_sum, child_ls,
                                           atol=1e-6)
                walk(child)

        walk(tree.root)

    @given(seed=st.integers(0, 10_000), threshold=st.floats(0.01, 0.5))
    @settings(max_examples=25, deadline=None)
    def test_membership_partition_property(self, seed, threshold):
        points = np.random.default_rng(seed).uniform(size=(120, 3))
        tree = build_tree(points, threshold=threshold)
        ids = sorted(i for cf in tree.leaf_entries() for i in cf.member_ids)
        assert ids == list(range(120))


class TestThresholdBehaviour:
    def test_zero_threshold_separates_distinct_points(self, rng):
        points = rng.uniform(size=(40, 2))
        tree = build_tree(points, threshold=0.0, branching=8)
        assert tree.leaf_entry_count == 40

    def test_zero_threshold_merges_duplicates(self):
        points = np.tile(np.array([[0.3, 0.7]]), (10, 1))
        tree = build_tree(points, threshold=0.0)
        assert tree.leaf_entry_count == 1

    def test_large_threshold_single_cluster(self, rng):
        points = rng.uniform(size=(100, 2))
        tree = build_tree(points, threshold=10.0)
        assert tree.leaf_entry_count == 1

    def test_cluster_count_decreases_with_threshold(self, rng):
        """The Section 6.6 trend: fewer clusters as eps_c grows."""
        points = rng.uniform(size=(300, 3))
        counts = [build_tree(points, threshold=t).leaf_entry_count
                  for t in (0.02, 0.05, 0.1, 0.2, 0.5)]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_well_separated_clusters_recovered(self, rng):
        centers = np.array([[0.1, 0.1], [0.9, 0.1], [0.5, 0.9]])
        points = np.concatenate([
            center + rng.normal(0, 0.01, size=(50, 2))
            for center in centers
        ])
        points = np.clip(points, 0, 1)
        tree = build_tree(points[rng.permutation(150)], threshold=0.05)
        assert tree.leaf_entry_count == 3


class TestRebuild:
    def test_rebuild_caps_leaves(self, rng):
        points = rng.uniform(size=(400, 2))
        tree = build_tree(points, threshold=0.001, max_leaf_entries=50)
        assert tree.rebuild_count > 0
        assert tree.leaf_entry_count <= 50 * 2  # bounded, not exploding
        assert tree.threshold > 0.001

    def test_rebuild_preserves_membership(self, rng):
        points = rng.uniform(size=(200, 2))
        tree = build_tree(points, threshold=0.001, max_leaf_entries=30)
        ids = sorted(i for cf in tree.leaf_entries() for i in cf.member_ids)
        assert ids == list(range(200))


class TestStructureQueries:
    def test_height_grows(self, rng):
        small = build_tree(rng.uniform(size=(5, 2)), 0.0, branching=4)
        big = build_tree(rng.uniform(size=(500, 2)), 0.0, branching=4)
        assert big.height() > small.height()

    def test_node_count_positive(self, rng):
        tree = build_tree(rng.uniform(size=(50, 2)), 0.1)
        assert tree.node_count() >= 1
