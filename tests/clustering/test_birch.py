"""Tests for the public BIRCH pre-clustering API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.birch import Cluster, assign_to_clusters, precluster
from repro.exceptions import ClusteringError


class TestPrecluster:
    def test_partition(self, rng):
        points = rng.uniform(size=(200, 4))
        clusters = precluster(points, threshold=0.1)
        ids = sorted(i for c in clusters for i in c.member_ids)
        assert ids == list(range(200))

    def test_cluster_statistics(self, rng):
        points = rng.uniform(size=(100, 3))
        for cluster in precluster(points, threshold=0.2):
            members = points[list(cluster.member_ids)]
            np.testing.assert_allclose(cluster.centroid,
                                       members.mean(axis=0), atol=1e-9)
            np.testing.assert_allclose(cluster.lower, members.min(axis=0))
            np.testing.assert_allclose(cluster.upper, members.max(axis=0))
            assert cluster.count == len(members)
            expected_radius = np.sqrt(
                ((members - members.mean(axis=0)) ** 2).sum(axis=1).mean())
            assert cluster.radius == pytest.approx(expected_radius,
                                                   abs=1e-9)

    def test_radius_near_threshold(self, rng):
        """BIRCH guarantees radii 'generally within' the threshold; each
        absorb step enforces it exactly, so no cluster exceeds it."""
        points = rng.uniform(size=(300, 3))
        threshold = 0.15
        clusters = precluster(points, threshold)
        assert max(c.radius for c in clusters) <= threshold + 1e-6

    def test_separated_blobs(self, rng):
        blob_a = rng.normal([0.2] * 3, 0.01, size=(40, 3))
        blob_b = rng.normal([0.8] * 3, 0.01, size=(40, 3))
        points = np.clip(np.concatenate([blob_a, blob_b]), 0, 1)
        clusters = precluster(points[rng.permutation(80)], threshold=0.1)
        assert len(clusters) == 2
        counts = sorted(c.count for c in clusters)
        assert counts == [40, 40]

    def test_rejects_empty(self):
        with pytest.raises(ClusteringError):
            precluster(np.empty((0, 3)), 0.1)

    def test_rejects_1d(self, rng):
        with pytest.raises(ClusteringError):
            precluster(rng.uniform(size=10), 0.1)

    def test_single_point(self):
        clusters = precluster(np.array([[0.5, 0.5]]), 0.1)
        assert len(clusters) == 1
        assert clusters[0].member_ids == (0,)

    def test_deterministic(self, rng):
        points = rng.uniform(size=(150, 3))
        first = precluster(points, 0.08)
        second = precluster(points, 0.08)
        assert [c.member_ids for c in first] == [c.member_ids
                                                 for c in second]

    def test_max_leaf_entries_escalates(self, rng):
        points = rng.uniform(size=(300, 2))
        capped = precluster(points, 0.001, max_leaf_entries=20)
        assert len(capped) <= 40


class TestAssign:
    def test_matches_nearest_centroid(self, rng):
        points = rng.uniform(size=(60, 3))
        clusters = precluster(points, 0.2)
        labels = assign_to_clusters(points, clusters)
        centroids = np.stack([c.centroid for c in clusters])
        for point, label in zip(points, labels):
            distances = np.linalg.norm(centroids - point, axis=1)
            assert distances[label] == pytest.approx(distances.min())

    def test_rejects_empty_clusters(self, rng):
        with pytest.raises(ClusteringError):
            assign_to_clusters(rng.uniform(size=(4, 2)), [])
