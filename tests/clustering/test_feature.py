"""Tests for Clustering Features (BIRCH's CF triples)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.clustering.feature import ClusteringFeature
from repro.exceptions import ClusteringError


def points_strategy(n_min=1, n_max=20, d=3):
    return npst.arrays(np.float64, st.tuples(st.integers(n_min, n_max),
                                             st.just(d)),
                       elements=st.floats(-5, 5, allow_nan=False))


class TestBasics:
    def test_empty_cf(self):
        cf = ClusteringFeature(3)
        assert cf.count == 0
        with pytest.raises(ClusteringError):
            _ = cf.centroid
        with pytest.raises(ClusteringError):
            _ = cf.radius

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ClusteringError):
            ClusteringFeature(0)

    def test_single_point(self):
        cf = ClusteringFeature.from_point(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(cf.centroid, [1, 2, 3])
        assert cf.radius == pytest.approx(0.0)
        assert cf.diameter == pytest.approx(0.0)

    def test_dimension_mismatch(self):
        cf = ClusteringFeature(3)
        with pytest.raises(ClusteringError):
            cf.add_point(np.zeros(4))

    def test_member_tracking(self):
        cf = ClusteringFeature.from_point(np.zeros(2), point_id=7)
        cf.add_point(np.ones(2), point_id=9)
        assert cf.member_ids == [7, 9]

    def test_no_tracking_by_default(self):
        cf = ClusteringFeature(2)
        cf.add_point(np.zeros(2))
        assert cf.member_ids is None


class TestStatistics:
    def test_centroid_is_mean(self, rng):
        points = rng.uniform(size=(50, 4))
        cf = ClusteringFeature(4)
        for p in points:
            cf.add_point(p)
        np.testing.assert_allclose(cf.centroid, points.mean(axis=0))

    def test_radius_is_rms_distance(self, rng):
        points = rng.uniform(size=(30, 3))
        cf = ClusteringFeature(3)
        for p in points:
            cf.add_point(p)
        expected = np.sqrt(
            ((points - points.mean(axis=0)) ** 2).sum(axis=1).mean())
        assert cf.radius == pytest.approx(expected)

    def test_diameter_is_rms_pairwise(self, rng):
        points = rng.uniform(size=(12, 2))
        cf = ClusteringFeature(2)
        for p in points:
            cf.add_point(p)
        deltas = points[:, None, :] - points[None, :, :]
        d2 = (deltas ** 2).sum(axis=2)
        n = len(points)
        expected = np.sqrt(d2.sum() / (n * (n - 1)))
        assert cf.diameter == pytest.approx(expected)

    def test_radius_never_negative_under_cancellation(self):
        # Identical large-magnitude points stress float cancellation.
        cf = ClusteringFeature(2)
        for _ in range(100):
            cf.add_point(np.array([1e6, 1e6]))
        assert cf.radius == pytest.approx(0.0, abs=1e-3)

    @given(points_strategy())
    @settings(max_examples=40)
    def test_merge_equals_bulk_property(self, points):
        """CF additivity: merging two halves equals one big CF."""
        half = len(points) // 2
        left = ClusteringFeature(3)
        right = ClusteringFeature(3)
        for p in points[:half]:
            left.add_point(p)
        for p in points[half:]:
            right.add_point(p)
        bulk = ClusteringFeature(3)
        for p in points:
            bulk.add_point(p)
        if half > 0:
            left.merge(right)
            assert left.count == bulk.count
            np.testing.assert_allclose(left.centroid, bulk.centroid,
                                       atol=1e-9)
            # abs tolerance reflects the CF radius's inherent float
            # cancellation (sqrt of a difference of large terms).
            assert left.radius == pytest.approx(bulk.radius, abs=1e-6)


class TestMergePreviews:
    def test_radius_if_merged_matches_actual(self, rng):
        a = ClusteringFeature(3)
        b = ClusteringFeature(3)
        for p in rng.uniform(size=(5, 3)):
            a.add_point(p)
        for p in rng.uniform(size=(7, 3)):
            b.add_point(p)
        preview = a.radius_if_merged(b)
        a.merge(b)
        assert a.radius == pytest.approx(preview)

    def test_merge_dimension_mismatch(self):
        with pytest.raises(ClusteringError):
            ClusteringFeature(2).merge(ClusteringFeature(3))

    def test_centroid_distance(self):
        a = ClusteringFeature.from_point(np.array([0.0, 0.0]))
        b = ClusteringFeature.from_point(np.array([3.0, 4.0]))
        assert a.centroid_distance(b) == pytest.approx(5.0)

    def test_distance_to_point(self):
        a = ClusteringFeature.from_point(np.array([1.0, 1.0]))
        assert a.distance_to_point(np.array([4.0, 5.0])) == pytest.approx(5.0)

    def test_copy_is_independent(self):
        a = ClusteringFeature.from_point(np.array([1.0, 2.0]), point_id=0)
        b = a.copy()
        b.add_point(np.array([3.0, 4.0]), point_id=1)
        assert a.count == 1
        assert b.count == 2
        assert a.member_ids == [0]
