"""Tests for the agglomerative subcluster merge (BIRCH phase-3 analog)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.birch import merge_clusters, precluster
from repro.exceptions import ClusteringError


class TestMergeClusters:
    def test_empty(self, rng):
        assert merge_clusters(rng.uniform(size=(3, 2)), [], 0.1) == []

    def test_rejects_negative_threshold(self, rng):
        points = rng.uniform(size=(10, 2))
        clusters = precluster(points, 0.05)
        with pytest.raises(ClusteringError):
            merge_clusters(points, clusters, -0.1)

    def test_zero_threshold_is_identity_partition(self, rng):
        points = rng.uniform(size=(60, 3))
        clusters = precluster(points, 0.05)
        merged = merge_clusters(points, clusters, 0.0)
        assert len(merged) == len(clusters)
        ids = sorted(i for c in merged for i in c.member_ids)
        assert ids == list(range(60))

    def test_huge_threshold_single_cluster(self, rng):
        points = rng.uniform(size=(80, 3))
        clusters = precluster(points, 0.02)
        merged = merge_clusters(points, clusters, 10.0)
        assert len(merged) == 1
        assert merged[0].count == 80

    def test_members_preserved(self, rng):
        points = rng.uniform(size=(120, 4))
        clusters = precluster(points, 0.03)
        merged = merge_clusters(points, clusters, 0.06)
        ids = sorted(i for c in merged for i in c.member_ids)
        assert ids == list(range(120))

    def test_statistics_recomputed_exactly(self, rng):
        points = rng.uniform(size=(50, 2))
        clusters = precluster(points, 0.02)
        for cluster in merge_clusters(points, clusters, 0.1):
            members = points[list(cluster.member_ids)]
            np.testing.assert_allclose(cluster.centroid,
                                       members.mean(axis=0), atol=1e-12)
            np.testing.assert_allclose(cluster.lower, members.min(axis=0))
            np.testing.assert_allclose(cluster.upper, members.max(axis=0))

    def test_transitive_merging(self):
        """A chain a—b—c merges into one cluster even though a and c
        are farther apart than the threshold (single link)."""
        points = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0],
                           [0.9, 0.9]])
        clusters = precluster(points, 0.0)  # one cluster per point
        merged = merge_clusters(points, clusters, 0.1)
        sizes = sorted(c.count for c in merged)
        assert sizes == [1, 3]

    def test_defragments_split_blob(self, rng):
        """Points of one tight blob inserted in adversarial order can
        fragment; merging at ~2x threshold reunites them."""
        blob = np.clip(rng.normal(0.5, 0.02, size=(100, 3)), 0, 1)
        clusters = precluster(blob, 0.02)
        merged = merge_clusters(blob, clusters, 0.05)
        assert len(merged) <= len(clusters)
        assert max(c.count for c in merged) >= max(c.count
                                                   for c in clusters)


class TestExtractionWithMerge:
    def test_merge_reduces_region_count(self, rng):
        from repro.core.extraction import extract_regions
        from repro.core.parameters import ExtractionParameters
        from repro.imaging.image import Image

        image = Image(rng.uniform(size=(64, 64, 3)), "rgb")
        base = ExtractionParameters(window_min=16, window_max=32,
                                    stride=8, cluster_threshold=0.04)
        plain = extract_regions(image, base)
        merged = extract_regions(image, base.with_(merge_factor=2.0))
        assert len(merged) <= len(plain)
        # Window population unchanged.
        assert sum(r.window_count for r in merged) == \
            sum(r.window_count for r in plain)

    def test_merge_factor_validated(self):
        from repro.core.parameters import ExtractionParameters
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError):
            ExtractionParameters(merge_factor=0.0)


class TestRefineClusters:
    def test_empty(self, rng):
        from repro.clustering.birch import refine_clusters

        assert refine_clusters(rng.uniform(size=(3, 2)), []) == []

    def test_rejects_zero_iterations(self, rng):
        from repro.clustering.birch import precluster, refine_clusters
        from repro.exceptions import ClusteringError

        points = rng.uniform(size=(20, 2))
        clusters = precluster(points, 0.1)
        with pytest.raises(ClusteringError):
            refine_clusters(points, clusters, iterations=0)

    def test_partition_preserved(self, rng):
        from repro.clustering.birch import precluster, refine_clusters

        points = rng.uniform(size=(150, 3))
        refined = refine_clusters(points, precluster(points, 0.05))
        ids = sorted(i for c in refined for i in c.member_ids)
        assert ids == list(range(150))

    def test_members_nearest_to_own_centroid(self, rng):
        from repro.clustering.birch import precluster, refine_clusters

        points = rng.uniform(size=(100, 2))
        refined = refine_clusters(points, precluster(points, 0.08),
                                  iterations=5)
        centroids = np.stack([c.centroid for c in refined])
        for k, cluster in enumerate(refined):
            for i in cluster.member_ids:
                distances = np.linalg.norm(centroids - points[i], axis=1)
                # Own centroid moved after final assignment; allow ties
                # within numerical slack of the best.
                assert np.linalg.norm(points[i] - cluster.centroid) <= \
                    distances.min() + 0.05

    def test_refinement_never_inflates_mean_radius_much(self, rng):
        from repro.clustering.birch import precluster, refine_clusters

        points = rng.uniform(size=(200, 3))
        clusters = precluster(points, 0.08)
        refined = refine_clusters(points, clusters, iterations=3)
        before = np.mean([c.radius for c in clusters])
        after = np.mean([c.radius for c in refined])
        assert after <= before * 1.25

    def test_statistics_exact(self, rng):
        from repro.clustering.birch import precluster, refine_clusters

        points = rng.uniform(size=(60, 2))
        for cluster in refine_clusters(points, precluster(points, 0.1)):
            members = points[list(cluster.member_ids)]
            np.testing.assert_allclose(cluster.centroid,
                                       members.mean(axis=0), atol=1e-12)
