"""The golden-extraction fixture: one seeded image, canonical arrays.

Single source of truth shared by ``scripts/regenerate_golden.py``
(which writes ``tests/fixtures/golden_flower.npz``) and
``tests/core/test_golden_extraction.py`` (which recomputes the arrays
and compares them *byte for byte* against the committed fixture).

The image is fully deterministic: a drawn flower scene plus seeded
uniform noise, extracted with the fixed parameters below.  Any change
to the wavelet DP, the clustering, or region assembly that alters a
single output bit fails the golden test — which is the point; if the
change is intended, rerun the regeneration script and commit the new
fixture alongside it.
"""

from __future__ import annotations

import numpy as np

from repro.core.extraction import extract_regions
from repro.core.parameters import ExtractionParameters
from repro.core.signatures import compute_window_set
from repro.imaging.draw import Canvas, draw_flower
from repro.imaging.image import Image

#: Fixture location, relative to the repository root.
GOLDEN_PATH = "tests/fixtures/golden_flower.npz"

#: Extraction parameters frozen into the fixture.
GOLDEN_PARAMS = ExtractionParameters(window_min=16, window_max=32,
                                     stride=8, cluster_threshold=0.05)

#: Seed for the noise layer (makes windows non-degenerate).
GOLDEN_SEED = 866


def golden_image() -> Image:
    """The fixture image: two flowers on green, plus seeded noise."""
    canvas = Canvas(64, 96, (0.1, 0.45, 0.12))
    draw_flower(canvas, 30.0, 28.0, 14.0, (0.85, 0.1, 0.1),
                (0.9, 0.8, 0.2))
    draw_flower(canvas, 40.0, 70.0, 10.0, (0.2, 0.2, 0.9),
                (0.9, 0.9, 0.9))
    image = canvas.to_image(name="golden-flower")
    noise = np.random.default_rng(GOLDEN_SEED).uniform(
        -0.02, 0.02, size=image.pixels.shape)
    pixels = np.clip(image.pixels + noise, 0.0, 1.0)
    return Image(pixels, image.color_space, image.name)


def golden_arrays() -> dict[str, np.ndarray]:
    """Every canonical extraction output as a named array.

    Covers both pipeline layers: the raw sliding-window feature matrix
    (wavelet DP + color conversion) and the assembled regions
    (clustering, signatures, coverage bitmaps).
    """
    image = golden_image()
    window_set = compute_window_set(image, GOLDEN_PARAMS)
    regions = extract_regions(image, GOLDEN_PARAMS)
    return {
        "features": window_set.features,
        "geometry": window_set.geometry,
        "region_lower": np.stack([r.signature.lower for r in regions]),
        "region_upper": np.stack([r.signature.upper for r in regions]),
        "window_counts": np.array([r.window_count for r in regions],
                                  dtype=np.int64),
        "cluster_radii": np.array([r.cluster_radius for r in regions],
                                  dtype=np.float64),
        "bitmaps": np.stack([r.bitmap.blocks for r in regions]),
    }
