"""Tests for the synthetic dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.generator import (
    MISC_SIZES,
    SCENE_CLASSES,
    DatasetSpec,
    generate_dataset,
    render_scene,
)
from repro.exceptions import DatasetError


class TestSpec:
    def test_defaults_cover_all_classes(self):
        spec = DatasetSpec()
        assert set(spec.classes) == set(SCENE_CLASSES)
        assert spec.sizes == MISC_SIZES

    def test_rejects_unknown_class(self):
        with pytest.raises(DatasetError):
            DatasetSpec(classes=("flowers", "spaceships"))

    def test_rejects_zero_images(self):
        with pytest.raises(DatasetError):
            DatasetSpec(images_per_class=0)

    def test_rejects_empty_sizes(self):
        with pytest.raises(DatasetError):
            DatasetSpec(sizes=())


class TestGeneration:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(DatasetSpec(images_per_class=3, seed=11))

    def test_counts(self, dataset):
        assert len(dataset) == 3 * len(SCENE_CLASSES)
        assert dataset.class_counts() == {c: 3 for c in SCENE_CLASSES}

    def test_names_unique(self, dataset):
        names = [image.name for image in dataset.images]
        assert len(set(names)) == len(names)

    def test_sizes_from_misc(self, dataset):
        for image in dataset.images:
            assert (image.height, image.width) in MISC_SIZES

    def test_deterministic(self):
        spec = DatasetSpec(images_per_class=2, seed=42)
        first = generate_dataset(spec)
        second = generate_dataset(spec)
        for a, b in zip(first.images, second.images):
            assert a == b

    def test_different_seeds_differ(self):
        a = generate_dataset(DatasetSpec(images_per_class=1, seed=1))
        b = generate_dataset(DatasetSpec(images_per_class=1, seed=2))
        assert any(x != y for x, y in zip(a.images, b.images))

    def test_within_class_variation(self, dataset):
        """Images of a class are NOT identical — objects move and
        rescale."""
        flowers = [image for image, label
                   in zip(dataset.images, dataset.labels)
                   if label == "flowers"]
        assert flowers[0] != flowers[1]

    def test_relevant_names(self, dataset):
        relevant = dataset.relevant_names("sunset")
        assert len(relevant) == 3
        assert all(name.startswith("sunset") for name in relevant)

    def test_relevant_names_unknown_class(self, dataset):
        with pytest.raises(DatasetError):
            dataset.relevant_names("spaceships")

    def test_label_of(self, dataset):
        name = dataset.images[0].name
        assert dataset.label_of(name) == dataset.labels[0]
        with pytest.raises(DatasetError):
            dataset.label_of("missing")


class TestRenderScene:
    @pytest.mark.parametrize("label", sorted(SCENE_CLASSES))
    def test_every_class_renders(self, label):
        image = render_scene(label, seed=3, size=(85, 128))
        assert image.shape == (85, 128, 3)
        assert 0.0 <= image.pixels.min() and image.pixels.max() <= 1.0

    def test_unknown_class(self):
        with pytest.raises(DatasetError):
            render_scene("spaceships", seed=0)

    def test_deterministic_per_seed(self):
        assert render_scene("ocean", 5) == render_scene("ocean", 5)
        assert render_scene("ocean", 5) != render_scene("ocean", 6)

    def test_flowers_contain_red_or_pink_mass(self):
        image = render_scene("flowers", seed=9, size=(96, 128))
        red = image.pixels[:, :, 0]
        green = image.pixels[:, :, 1]
        flowerish = (red > 0.6) & (red > green + 0.2)
        assert flowerish.mean() > 0.02

    def test_night_sky_is_dark(self):
        image = render_scene("night_sky", seed=4, size=(85, 128))
        assert np.median(image.pixels) < 0.2

    def test_custom_name(self):
        assert render_scene("desert", 1, name="dune").name == "dune"
