"""Tests for the texture-collage dataset with region-level annotations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.collage import (
    TEXTURES,
    CollageDataset,
    Patch,
    generate_collages,
    render_collage,
    window_texture,
)
from repro.exceptions import DatasetError


class TestPatch:
    def test_contains_window(self):
        patch = Patch("grass", 10, 20, 40, 50)
        assert patch.contains_window(10, 20, 40)
        assert patch.contains_window(15, 25, 16)
        assert not patch.contains_window(5, 20, 16)    # above
        assert not patch.contains_window(40, 60, 16)   # spills right

    def test_slack(self):
        patch = Patch("sky", 10, 10, 20, 20)
        assert not patch.contains_window(8, 10, 20)
        assert patch.contains_window(8, 10, 20, slack=2)


class TestRenderCollage:
    def test_single_texture(self):
        collage = render_collage(["grass"], seed=1)
        assert len(collage.patches) == 1
        assert collage.patches[0].height == collage.image.height
        assert collage.texture_ids == {"grass"}

    def test_two_textures_partition_width(self):
        collage = render_collage(["sky", "water"], seed=2)
        left, right = collage.patches
        assert left.width + right.width == collage.image.width
        assert left.height == collage.image.height

    def test_four_textures_partition_area(self):
        collage = render_collage(["sky", "water", "sand", "grass"],
                                 seed=3)
        total = sum(patch.height * patch.width
                    for patch in collage.patches)
        assert total == collage.image.area

    def test_rejects_three_textures(self):
        with pytest.raises(DatasetError):
            render_collage(["sky", "water", "sand"], seed=1)

    def test_rejects_unknown_texture(self):
        with pytest.raises(DatasetError):
            render_collage(["lava"], seed=1)

    def test_deterministic(self):
        a = render_collage(["brick", "coal"], seed=9)
        b = render_collage(["brick", "coal"], seed=9)
        assert a.image == b.image
        assert a.patches == b.patches

    def test_same_texture_similar_but_not_identical(self):
        """Per-image jitter keeps repeated textures realistic."""
        a = render_collage(["wheat"], seed=1).image
        b = render_collage(["wheat"], seed=2).image
        assert a != b
        assert abs(a.pixels.mean() - b.pixels.mean()) < 0.1

    def test_patch_pixels_match_texture_color(self):
        collage = render_collage(["coal", "sky"], seed=4)
        coal_patch = collage.patches[0]
        region = collage.image.pixels[
            coal_patch.top: coal_patch.top + coal_patch.height,
            coal_patch.left: coal_patch.left + coal_patch.width]
        assert region.mean() < 0.25  # coal is dark


class TestGenerateCollages:
    def test_count_and_names(self):
        dataset = generate_collages(10, seed=5)
        assert len(dataset) == 10
        names = [image.name for image in dataset.images]
        assert len(set(names)) == 10

    def test_rejects_zero(self):
        with pytest.raises(DatasetError):
            generate_collages(0)

    def test_sharing_texture(self):
        dataset = generate_collages(30, seed=6)
        for texture_id in TEXTURES:
            sharing = dataset.sharing_texture(texture_id)
            for name in sharing:
                assert texture_id in dataset.by_name(name).texture_ids

    def test_shared_count_symmetric(self):
        dataset = generate_collages(10, seed=7)
        names = [image.name for image in dataset.images]
        assert dataset.shared_count(names[0], names[1]) == \
            dataset.shared_count(names[1], names[0])

    def test_by_name_missing(self):
        dataset = generate_collages(3, seed=8)
        with pytest.raises(DatasetError):
            dataset.by_name("nope")


class TestWindowTexture:
    def test_interior_window_labelled(self):
        collage = render_collage(["grass", "sand"], seed=10)
        left = collage.patches[0]
        texture = window_texture(collage, left.top + 4, left.left + 4, 8)
        assert texture == "grass"

    def test_straddling_window_unlabelled(self):
        collage = render_collage(["grass", "sand"], seed=11)
        split = collage.patches[0].width
        assert window_texture(collage, 0, split - 4, 8) is None


class TestEndToEndOnCollages:
    def test_same_texture_regions_match(self):
        """Two collages sharing a texture produce at least one matching
        region pair under the paper's epsilon."""
        from repro.core.extraction import extract_regions
        from repro.core.parameters import ExtractionParameters

        params = ExtractionParameters(window_min=16, window_max=32,
                                      stride=8)
        a = render_collage(["water", "sand"], seed=20)
        b = render_collage(["water", "coal"], seed=21)
        regions_a = extract_regions(a.image, params)
        regions_b = extract_regions(b.image, params)
        best = min(ra.signature.distance(rb.signature)
                   for ra in regions_a for rb in regions_b)
        assert best <= 0.085

    def test_disjoint_textures_do_not_match_tightly(self):
        from repro.core.extraction import extract_regions
        from repro.core.parameters import ExtractionParameters

        params = ExtractionParameters(window_min=16, window_max=32,
                                      stride=8, min_region_windows=3)
        a = render_collage(["coal"], seed=22)
        b = render_collage(["sky"], seed=23)
        regions_a = extract_regions(a.image, params)
        regions_b = extract_regions(b.image, params)
        best = min(ra.signature.distance(rb.signature)
                   for ra in regions_a for rb in regions_b)
        assert best > 0.085
