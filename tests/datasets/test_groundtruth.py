"""Tests for externally supplied relevance judgments."""

from __future__ import annotations

import pytest

from repro.datasets.groundtruth import RelevanceJudgments
from repro.exceptions import DatasetError


class TestConstruction:
    def test_from_pairs(self):
        judgments = RelevanceJudgments.from_pairs(
            [("a", "cats"), ("b", "cats"), ("c", "dogs")])
        assert judgments.label_of("a") == "cats"
        assert judgments.relevant_names("cats") == {"a", "b"}
        assert judgments.classes() == {"cats", "dogs"}

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            RelevanceJudgments({})

    def test_unknown_name(self):
        judgments = RelevanceJudgments({"a": "x"})
        with pytest.raises(DatasetError):
            judgments.label_of("b")

    def test_unknown_label(self):
        judgments = RelevanceJudgments({"a": "x"})
        with pytest.raises(DatasetError):
            judgments.relevant_names("y")


class TestFromFile:
    def test_parses_file(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text(
            "# image-name class-label\n"
            "\n"
            "flowers-0001 flowers\n"
            "sunset-0001 sunset\n"
        )
        judgments = RelevanceJudgments.from_file(str(path))
        assert judgments.label_of("flowers-0001") == "flowers"
        assert judgments.classes() == {"flowers", "sunset"}

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("one two three\n")
        with pytest.raises(DatasetError):
            RelevanceJudgments.from_file(str(path))
