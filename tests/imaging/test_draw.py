"""Tests for the drawing primitives behind the synthetic dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.draw import Canvas, draw_flower


class TestCanvas:
    def test_initial_fill(self):
        canvas = Canvas(4, 6, (0.2, 0.4, 0.6))
        np.testing.assert_allclose(canvas.pixels[2, 3], [0.2, 0.4, 0.6])

    def test_rejects_empty(self):
        with pytest.raises(ImageFormatError):
            Canvas(0, 4)

    def test_to_image(self):
        image = Canvas(4, 4, (1.0, 0.0, 0.0)).to_image(name="red")
        assert image.name == "red"
        assert image.pixels[0, 0, 0] == pytest.approx(1.0)

    def test_fill_rect_clips(self):
        canvas = Canvas(4, 4)
        canvas.fill_rect(-2, -2, 4, 4, (1.0, 1.0, 1.0))
        assert canvas.pixels[1, 1, 0] == pytest.approx(1.0)
        assert canvas.pixels[2, 2, 0] == pytest.approx(0.0)

    def test_fill_rect_fully_outside(self):
        canvas = Canvas(4, 4)
        canvas.fill_rect(10, 10, 3, 3, (1.0, 1.0, 1.0))
        assert canvas.pixels.max() == pytest.approx(0.0)

    def test_fill_circle(self):
        canvas = Canvas(11, 11)
        canvas.fill_circle(5, 5, 3, (0.0, 1.0, 0.0))
        assert canvas.pixels[5, 5, 1] == pytest.approx(1.0)   # center
        assert canvas.pixels[5, 8, 1] == pytest.approx(1.0)   # on radius
        assert canvas.pixels[0, 0, 1] == pytest.approx(0.0)   # corner

    def test_fill_ellipse_rotation_changes_footprint(self):
        flat = Canvas(21, 21)
        flat.fill_ellipse(10, 10, 2, 8, (1.0, 1.0, 1.0))
        rotated = Canvas(21, 21)
        rotated.fill_ellipse(10, 10, 2, 8, (1.0, 1.0, 1.0),
                             angle=np.pi / 2)
        assert flat.pixels[10, 2, 0] == pytest.approx(1.0)
        assert rotated.pixels[10, 2, 0] == pytest.approx(0.0)
        assert rotated.pixels[2, 10, 0] == pytest.approx(1.0)

    def test_degenerate_ellipse_is_noop(self):
        canvas = Canvas(4, 4)
        canvas.fill_ellipse(2, 2, 0, 3, (1.0, 1.0, 1.0))
        assert canvas.pixels.max() == pytest.approx(0.0)

    def test_vertical_gradient_endpoints(self):
        canvas = Canvas(8, 4)
        canvas.vertical_gradient((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        assert canvas.pixels[0, 0, 0] == pytest.approx(0.0)
        assert canvas.pixels[7, 0, 0] == pytest.approx(1.0)
        assert np.all(np.diff(canvas.pixels[:, 0, 0]) > 0)

    def test_stripes(self):
        canvas = Canvas(8, 8)
        canvas.stripes((1.0, 0.0, 0.0), (0.0, 0.0, 1.0), period=2)
        assert canvas.pixels[0, 0, 0] == pytest.approx(1.0)
        assert canvas.pixels[2, 0, 2] == pytest.approx(1.0)

    def test_stripes_bad_period(self):
        with pytest.raises(ImageFormatError):
            Canvas(4, 4).stripes((0, 0, 0), (1, 1, 1), period=0)

    def test_speckle_stays_in_range(self, rng):
        canvas = Canvas(16, 16, (0.99, 0.01, 0.5))
        canvas.speckle(rng, 0.2)
        assert canvas.pixels.min() >= 0.0
        assert canvas.pixels.max() <= 1.0

    def test_blit_offsets_and_clipping(self):
        base = Canvas(6, 6)
        patch = Canvas(4, 4, (1.0, 1.0, 1.0))
        base.blit(patch, 4, 4)  # only 2x2 visible
        assert base.pixels[5, 5, 0] == pytest.approx(1.0)
        assert base.pixels[3, 3, 0] == pytest.approx(0.0)

    def test_blit_mask_color(self):
        base = Canvas(4, 4, (0.5, 0.5, 0.5))
        patch = Canvas(4, 4, (0.0, 0.0, 0.0))
        patch.fill_rect(0, 0, 2, 2, (1.0, 0.0, 0.0))
        base.blit(patch, 0, 0, mask_color=(0.0, 0.0, 0.0))
        assert base.pixels[0, 0, 0] == pytest.approx(1.0)  # patch content
        assert base.pixels[3, 3, 0] == pytest.approx(0.5)  # masked through


class TestDrawFlower:
    def test_center_and_petals_present(self):
        canvas = Canvas(64, 64, (0.0, 0.3, 0.0))
        draw_flower(canvas, 32, 32, 16, (1.0, 0.0, 0.0), (1.0, 1.0, 0.0))
        assert canvas.pixels[32, 32, 1] == pytest.approx(1.0)  # yellow core
        red = (canvas.pixels[:, :, 0] > 0.9) & (canvas.pixels[:, :, 1] < 0.1)
        assert red.sum() > 100  # petals cover a real area

    def test_zero_radius_noop(self):
        canvas = Canvas(16, 16)
        draw_flower(canvas, 8, 8, 0, (1.0, 0.0, 0.0), (1.0, 1.0, 0.0))
        assert canvas.pixels.max() == pytest.approx(0.0)
