"""Tests for the PPM/PGM/BMP codecs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodecError
from repro.imaging.codecs import (
    read_bmp,
    read_image,
    read_pnm,
    write_bmp,
    write_image,
    write_pnm,
)
from repro.imaging.image import Image


def quantized(rng, shape):
    """Random pixels exactly representable in 8 bits (codec-lossless)."""
    return rng.integers(0, 256, size=shape).astype(np.float64) / 255.0


class TestPnm:
    @pytest.mark.parametrize("binary", [True, False])
    def test_ppm_roundtrip(self, rng, tmp_path, binary):
        image = Image(quantized(rng, (9, 13, 3)), "rgb", "sample")
        path = tmp_path / "sample.ppm"
        write_pnm(image, path, binary=binary)
        loaded = read_pnm(path)
        assert loaded.name == "sample"
        assert loaded.color_space == "rgb"
        np.testing.assert_allclose(loaded.pixels, image.pixels, atol=1e-9)

    @pytest.mark.parametrize("binary", [True, False])
    def test_pgm_roundtrip(self, rng, tmp_path, binary):
        image = Image(quantized(rng, (7, 5, 1)), "gray")
        path = tmp_path / "g.pgm"
        write_pnm(image, path, binary=binary)
        loaded = read_pnm(path)
        assert loaded.color_space == "gray"
        np.testing.assert_allclose(loaded.pixels, image.pixels, atol=1e-9)

    def test_comments_in_header(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P2\n# a comment\n2 2\n# another\n255\n0 128 255 64\n")
        loaded = read_pnm(path)
        assert loaded.pixels[0, 1, 0] == pytest.approx(128 / 255)

    def test_16bit_binary(self, tmp_path):
        path = tmp_path / "deep.pgm"
        payload = np.array([[0, 65535], [32768, 1024]], dtype=">u2")
        path.write_bytes(b"P5\n2 2\n65535\n" + payload.tobytes())
        loaded = read_pnm(path)
        assert loaded.pixels[0, 1, 0] == pytest.approx(1.0)
        assert loaded.pixels[1, 0, 0] == pytest.approx(0.5, abs=1e-4)

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P9\n2 2\n255\n")
        with pytest.raises(CodecError):
            read_pnm(path)

    def test_rejects_truncated_payload(self, tmp_path):
        path = tmp_path / "short.ppm"
        path.write_bytes(b"P6\n4 4\n255\n\x00\x01")
        with pytest.raises(CodecError):
            read_pnm(path)

    def test_rejects_garbage_header(self, tmp_path):
        path = tmp_path / "garbage.ppm"
        path.write_bytes(b"P6\nabc def\n255\n")
        with pytest.raises(CodecError):
            read_pnm(path)

    def test_rejects_writing_ycc(self, rng, tmp_path):
        from repro.color.spaces import rgb_to_ycc
        image = rgb_to_ycc(Image(rng.uniform(size=(4, 4, 3))))
        with pytest.raises(CodecError):
            write_pnm(image, tmp_path / "x.ppm")

    @given(height=st.integers(1, 12), width=st.integers(1, 12),
           seed=st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, height, width, seed):
        import tempfile

        rng = np.random.default_rng(seed)
        image = Image(quantized(rng, (height, width, 3)))
        with tempfile.TemporaryDirectory() as directory:
            path = f"{directory}/image.ppm"
            write_pnm(image, path)
            np.testing.assert_allclose(read_pnm(path).pixels, image.pixels,
                                       atol=1e-9)


class TestBmp:
    def test_roundtrip(self, rng, tmp_path):
        image = Image(quantized(rng, (10, 7, 3)), "rgb", "pic")
        path = tmp_path / "pic.bmp"
        write_bmp(image, path)
        loaded = read_bmp(path)
        np.testing.assert_allclose(loaded.pixels, image.pixels, atol=1e-9)

    def test_row_padding_widths(self, rng, tmp_path):
        # widths 1..4 exercise all 4-byte padding cases
        for width in (1, 2, 3, 4, 5):
            image = Image(quantized(rng, (3, width, 3)))
            path = tmp_path / f"w{width}.bmp"
            write_bmp(image, path)
            np.testing.assert_allclose(read_bmp(path).pixels, image.pixels,
                                       atol=1e-9)

    def test_rejects_non_bmp(self, tmp_path):
        path = tmp_path / "no.bmp"
        path.write_bytes(b"GIF89a....")
        with pytest.raises(CodecError):
            read_bmp(path)

    def test_rejects_unsupported_bpp(self, rng, tmp_path):
        image = Image(quantized(rng, (2, 2, 3)))
        path = tmp_path / "x.bmp"
        write_bmp(image, path)
        data = bytearray(path.read_bytes())
        data[28] = 8  # claim 8-bit
        path.write_bytes(bytes(data))
        with pytest.raises(CodecError):
            read_bmp(path)


class TestDispatch:
    def test_read_write_by_extension(self, rng, tmp_path):
        image = Image(quantized(rng, (5, 5, 3)))
        for ext in (".ppm", ".bmp"):
            path = tmp_path / f"d{ext}"
            write_image(image, path)
            np.testing.assert_allclose(read_image(path).pixels,
                                       image.pixels, atol=1e-9)

    def test_unknown_extension(self, rng, tmp_path):
        with pytest.raises(CodecError):
            read_image(tmp_path / "x.jpeg")
        with pytest.raises(CodecError):
            write_image(Image(rng.uniform(size=(2, 2, 3))),
                        tmp_path / "x.tiff")
