"""Tests for the robustness perturbation transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging import transforms
from repro.imaging.image import Image


@pytest.fixture
def image(rng) -> Image:
    return Image(rng.uniform(0.2, 0.8, size=(16, 24, 3)), "rgb", "base")


class TestColorShift:
    def test_shifts_and_clips(self, image):
        shifted = transforms.color_shift(image, (0.5, 0.0, -0.5))
        assert shifted.pixels[:, :, 0].min() >= 0.7 - 1e-9
        assert shifted.pixels[:, :, 2].max() <= 0.3 + 1e-9
        np.testing.assert_allclose(shifted.pixels[:, :, 1],
                                   image.pixels[:, :, 1])

    def test_zero_shift_identity(self, image):
        unchanged = transforms.color_shift(image, (0.0, 0.0, 0.0))
        np.testing.assert_allclose(unchanged.pixels, image.pixels)

    def test_detail_coefficients_invariant(self, rng):
        """Wavelet details are invariant to constant shifts — the basis
        of the paper's color-shift robustness claim."""
        from repro.wavelets.haar import haar_2d

        channel = rng.uniform(0.2, 0.6, size=(16, 16))
        base = haar_2d(channel)
        shifted = haar_2d(channel + 0.2)
        assert shifted[0, 0] == pytest.approx(base[0, 0] + 0.2)
        base[0, 0] = shifted[0, 0] = 0.0
        np.testing.assert_allclose(shifted, base, atol=1e-12)

    def test_rejects_non_rgb(self, gray_image):
        with pytest.raises(ImageFormatError):
            transforms.color_shift(gray_image, (0.1, 0.1, 0.1))


class TestBrightness:
    def test_scales(self, image):
        darker = transforms.brightness(image, 0.5)
        np.testing.assert_allclose(darker.pixels, image.pixels * 0.5)

    def test_clips(self, image):
        brighter = transforms.brightness(image, 3.0)
        assert brighter.pixels.max() <= 1.0

    def test_rejects_negative(self, image):
        with pytest.raises(ImageFormatError):
            transforms.brightness(image, -1.0)


class TestDitherNoise:
    def test_bounded_perturbation(self, image, rng):
        noisy = transforms.dither_noise(image, rng, amplitude=0.01)
        assert np.abs(noisy.pixels - image.pixels).max() <= 0.01 + 1e-12

    def test_stays_in_range(self, rng):
        extreme = Image(np.ones((4, 4, 3)), "rgb")
        noisy = transforms.dither_noise(extreme, rng, amplitude=0.5)
        assert noisy.pixels.max() <= 1.0


class TestRescale:
    def test_changes_size(self, image):
        smaller = transforms.rescale(image, 0.5)
        assert smaller.shape == (8, 12, 3)

    def test_rejects_nonpositive(self, image):
        with pytest.raises(ImageFormatError):
            transforms.rescale(image, 0.0)

    def test_preserves_mean_roughly(self, image):
        resized = transforms.rescale(image, 0.75)
        assert resized.pixels.mean() == pytest.approx(
            image.pixels.mean(), abs=0.03)


class TestFlipsAndRotations:
    def test_flip_horizontal_involution(self, image):
        twice = transforms.flip_horizontal(
            transforms.flip_horizontal(image))
        np.testing.assert_array_equal(twice.pixels, image.pixels)

    def test_flip_vertical(self, image):
        flipped = transforms.flip_vertical(image)
        np.testing.assert_array_equal(flipped.pixels[0], image.pixels[-1])

    def test_rotate90_four_times_identity(self, image):
        out = image
        for _ in range(4):
            out = transforms.rotate90(out)
        np.testing.assert_array_equal(out.pixels, image.pixels)

    def test_rotate90_shape(self, image):
        rotated = transforms.rotate90(image)
        assert rotated.shape == (24, 16, 3)


class TestTranslate:
    def test_content_moves(self):
        pixels = np.zeros((8, 8, 3))
        pixels[0, 0] = 1.0
        image = Image(pixels, "rgb")
        moved = transforms.translate_content(image, 3, 5)
        assert moved.pixels[3, 5, 0] == pytest.approx(1.0)
        assert moved.pixels[0, 0, 0] == pytest.approx(0.0)

    def test_no_wraparound(self):
        pixels = np.zeros((8, 8, 3))
        pixels[7, 7] = 1.0
        image = Image(pixels, "rgb")
        moved = transforms.translate_content(image, 2, 2, fill=0.5)
        # content left the frame; vacated area holds fill
        assert moved.pixels.max() == pytest.approx(0.5)

    def test_negative_offsets(self):
        pixels = np.zeros((8, 8, 3))
        pixels[4, 4] = 1.0
        moved = transforms.translate_content(Image(pixels, "rgb"), -2, -3)
        assert moved.pixels[2, 1, 0] == pytest.approx(1.0)

    def test_fill_tuple(self, image):
        moved = transforms.translate_content(image, 4, 0,
                                             fill=(1.0, 0.0, 0.0))
        np.testing.assert_allclose(moved.pixels[0, 0], [1.0, 0.0, 0.0])


class TestQuantize:
    def test_level_count(self, image):
        quantized = transforms.quantize(image, 4)
        assert len(np.unique(quantized.pixels)) <= 4

    def test_binary_extremes(self):
        image = Image(np.array([[[0.1, 0.5, 0.9]]] ), "rgb")
        quantized = transforms.quantize(image, 2)
        np.testing.assert_allclose(quantized.pixels[0, 0], [0.0, 1.0, 1.0])

    def test_rejects_single_level(self, image):
        with pytest.raises(ImageFormatError):
            transforms.quantize(image, 1)

    def test_idempotent(self, image):
        once = transforms.quantize(image, 8)
        twice = transforms.quantize(once, 8)
        np.testing.assert_allclose(twice.pixels, once.pixels, atol=1e-12)
