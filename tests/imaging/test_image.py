"""Tests for the Image container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.image import COLOR_SPACES, Image


class TestConstruction:
    def test_float_rgb(self, rng):
        image = Image(rng.uniform(size=(4, 6, 3)))
        assert image.shape == (4, 6, 3)
        assert image.color_space == "rgb"

    def test_integer_input_scaled(self):
        image = Image(np.full((2, 2, 3), 255, dtype=np.uint8))
        assert image.pixels.max() == pytest.approx(1.0)

    def test_2d_becomes_gray_channel(self, rng):
        image = Image(rng.uniform(size=(4, 4)), "gray")
        assert image.channels == 1

    def test_rejects_out_of_range_floats(self):
        with pytest.raises(ImageFormatError):
            Image(np.full((2, 2, 3), 2.0))

    def test_rejects_unknown_color_space(self, rng):
        with pytest.raises(ImageFormatError):
            Image(rng.uniform(size=(2, 2, 3)), "cmyk")

    def test_rejects_gray_with_three_channels(self, rng):
        with pytest.raises(ImageFormatError):
            Image(rng.uniform(size=(2, 2, 3)), "gray")

    def test_rejects_color_with_one_channel(self, rng):
        with pytest.raises(ImageFormatError):
            Image(rng.uniform(size=(2, 2, 1)), "rgb")

    def test_rejects_empty(self):
        with pytest.raises(ImageFormatError):
            Image(np.empty((0, 4, 3)))

    def test_rejects_wrong_channel_count(self, rng):
        with pytest.raises(ImageFormatError):
            Image(rng.uniform(size=(2, 2, 4)))

    def test_pixels_read_only(self, rgb_image):
        with pytest.raises(ValueError):
            rgb_image.pixels[0, 0, 0] = 0.5

    def test_color_space_list(self):
        assert set(COLOR_SPACES) == {"rgb", "ycc", "yiq", "hsv", "gray"}


class TestGeometry:
    def test_area(self, rgb_image):
        assert rgb_image.area == 32 * 48

    def test_crop(self, rgb_image):
        crop = rgb_image.crop(4, 8, 10, 12)
        assert crop.shape == (10, 12, 3)
        np.testing.assert_array_equal(crop.pixels,
                                      rgb_image.pixels[4:14, 8:20])

    def test_crop_out_of_bounds(self, rgb_image):
        with pytest.raises(ImageFormatError):
            rgb_image.crop(30, 0, 10, 10)

    def test_crop_negative(self, rgb_image):
        with pytest.raises(ImageFormatError):
            rgb_image.crop(-1, 0, 4, 4)

    def test_pad_to(self, rgb_image):
        padded = rgb_image.pad_to(40, 64, value=0.5)
        assert padded.shape == (40, 64, 3)
        np.testing.assert_array_equal(padded.pixels[:32, :48],
                                      rgb_image.pixels)
        assert padded.pixels[39, 63, 0] == pytest.approx(0.5)

    def test_pad_to_cannot_shrink(self, rgb_image):
        with pytest.raises(ImageFormatError):
            rgb_image.pad_to(16, 16)


class TestResize:
    def test_identity(self, rgb_image):
        assert rgb_image.resize(32, 48) is rgb_image

    def test_shape(self, rgb_image):
        assert rgb_image.resize(16, 24).shape == (16, 24, 3)

    def test_constant_image_stays_constant(self):
        image = Image(np.full((8, 8, 3), 0.3))
        resized = image.resize(16, 16)
        np.testing.assert_allclose(resized.pixels, 0.3, atol=1e-12)

    def test_upscale_preserves_mean_approximately(self, rgb_image):
        resized = rgb_image.resize(64, 96)
        assert resized.pixels.mean() == pytest.approx(
            rgb_image.pixels.mean(), abs=0.02)

    def test_rejects_nonpositive(self, rgb_image):
        with pytest.raises(ImageFormatError):
            rgb_image.resize(0, 10)


class TestChannels:
    def test_to_gray_weights(self):
        red = Image(np.dstack([np.ones((2, 2)), np.zeros((2, 2)),
                               np.zeros((2, 2))]))
        gray = red.to_gray()
        assert gray.color_space == "gray"
        assert gray.pixels[0, 0, 0] == pytest.approx(0.299)

    def test_to_gray_idempotent(self, gray_image):
        assert gray_image.to_gray() is gray_image

    def test_channel_access(self, rgb_image):
        np.testing.assert_array_equal(rgb_image.channel(1),
                                      rgb_image.pixels[:, :, 1])

    def test_channel_out_of_range(self, rgb_image):
        with pytest.raises(ImageFormatError):
            rgb_image.channel(3)

    def test_channels_iter(self, rgb_image):
        channels = list(rgb_image.channels_iter())
        assert len(channels) == 3
        np.testing.assert_array_equal(channels[2],
                                      rgb_image.pixels[:, :, 2])


class TestEquality:
    def test_equal_images(self, rng):
        pixels = rng.uniform(size=(3, 3, 3))
        assert Image(pixels) == Image(pixels.copy())

    def test_name_ignored_by_equality(self, rng):
        pixels = rng.uniform(size=(3, 3, 3))
        assert Image(pixels, name="a") == Image(pixels, name="b")

    def test_different_pixels(self, rng):
        assert Image(rng.uniform(size=(3, 3, 3))) != Image(
            rng.uniform(size=(3, 3, 3)))

    def test_allclose(self, rng):
        pixels = rng.uniform(size=(3, 3, 3)) * 0.5
        a = Image(pixels)
        b = Image(pixels + 1e-12)
        assert a.allclose(b)

    def test_with_name(self, rgb_image):
        renamed = rgb_image.with_name("other")
        assert renamed.name == "other"
        assert renamed == rgb_image
