"""Tests for the result-sheet montage renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ImageFormatError
from repro.imaging.image import Image
from repro.imaging.montage import montage, result_sheet


def solid(color, name="x", size=(20, 30)) -> Image:
    pixels = np.empty(size + (3,))
    pixels[:] = color
    return Image(pixels, "rgb", name)


class TestMontage:
    def test_geometry(self):
        images = [solid((0.5, 0.5, 0.5)) for _ in range(7)]
        sheet = montage(images, columns=3, cell=(32, 48), padding=2)
        # 3 rows of 32 + 4 paddings; 3 cols of 48 + 4 paddings.
        assert sheet.shape == (3 * 32 + 4 * 2, 3 * 48 + 4 * 2, 3)

    def test_single_image(self):
        sheet = montage([solid((0.2, 0.4, 0.6))], columns=5,
                        cell=(16, 16), padding=1)
        assert sheet.shape == (18, 5 * 16 + 6, 3)

    def test_cells_hold_resized_content(self):
        red = solid((1.0, 0.0, 0.0))
        blue = solid((0.0, 0.0, 1.0))
        sheet = montage([red, blue], columns=2, cell=(16, 16), padding=0,
                        highlight_first=False)
        np.testing.assert_allclose(sheet.pixels[8, 8], [1.0, 0.0, 0.0])
        np.testing.assert_allclose(sheet.pixels[8, 24], [0.0, 0.0, 1.0])

    def test_query_highlighted(self):
        sheet = montage([solid((0.0, 1.0, 0.0))] * 2, columns=2,
                        cell=(16, 16), padding=0)
        # First cell's top rows carry the red border.
        np.testing.assert_allclose(sheet.pixels[0, 8], [0.9, 0.1, 0.1])
        # Second cell unbordered.
        np.testing.assert_allclose(sheet.pixels[0, 24], [0.0, 1.0, 0.0])

    def test_background_fills_empty_cells(self):
        sheet = montage([solid((0.0, 0.0, 0.0))] * 4, columns=3,
                        cell=(8, 8), padding=2, background=0.7,
                        highlight_first=False)
        # Cell (1,1) and (1,2) are empty -> background.
        assert sheet.pixels[2 + 8 + 2 + 4, 2 + 8 + 2 + 4, 0] == \
            pytest.approx(0.7)

    def test_rejects_empty(self):
        with pytest.raises(ImageFormatError):
            montage([])

    def test_rejects_non_rgb(self, gray_image):
        with pytest.raises(ImageFormatError):
            montage([gray_image])

    def test_rejects_bad_columns(self):
        with pytest.raises(ImageFormatError):
            montage([solid((0, 0, 0))], columns=0)


class TestResultSheet:
    def test_query_first(self):
        query = solid((1.0, 0.0, 0.0), "query")
        matches = [solid((0.0, 1.0, 0.0), f"m{i}") for i in range(14)]
        sheet = result_sheet(query, matches, cell=(16, 16))
        # 15 images in 5 columns -> 3 rows.
        assert sheet.height > sheet.width / 5
        # Query cell content is red inside the border.
        assert sheet.pixels[4 + 8, 4 + 8, 0] == pytest.approx(1.0)
