"""Tests for the single-signature baselines (WBIIS, Jacobs, histogram)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.histogram import HistogramRetriever
from repro.baselines.jacobs import JacobsRetriever, _scale_bin
from repro.baselines.wbiis import WbiisRetriever
from repro.datasets.generator import render_scene
from repro.exceptions import ParameterError
from repro.imaging.image import Image

ALL_RETRIEVERS = [WbiisRetriever, JacobsRetriever, HistogramRetriever]


def tinted(seed: int, tint, name: str) -> Image:
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 0.25, size=(64, 64, 3))
    pixels = np.clip(base + np.asarray(tint), 0, 1)
    return Image(pixels, "rgb", name)


class TestSharedBehaviour:
    @pytest.mark.parametrize("retriever_cls", ALL_RETRIEVERS)
    def test_self_retrieval(self, retriever_cls):
        """An indexed image is its own best match."""
        retriever = retriever_cls()
        images = [tinted(i, (0.1 * i % 0.7, 0.3, 0.5 - 0.05 * i),
                         f"img-{i}") for i in range(6)]
        retriever.add_images(images)
        for image in images:
            ranked = retriever.rank(image)
            assert ranked[0][0] == image.name

    @pytest.mark.parametrize("retriever_cls", ALL_RETRIEVERS)
    def test_rank_orders_by_distance(self, retriever_cls):
        retriever = retriever_cls()
        retriever.add_images([tinted(i, (0.2, 0.4, 0.1), f"img-{i}")
                              for i in range(5)])
        ranked = retriever.rank(tinted(99, (0.2, 0.4, 0.1), "q"))
        distances = [d for _, d in ranked]
        assert distances == sorted(distances)

    @pytest.mark.parametrize("retriever_cls", ALL_RETRIEVERS)
    def test_k_caps_results(self, retriever_cls):
        retriever = retriever_cls()
        retriever.add_images([tinted(i, (0.5, 0.1, 0.1), f"img-{i}")
                              for i in range(8)])
        assert len(retriever.rank(tinted(0, (0.5, 0.1, 0.1), "q"), k=3)) == 3

    @pytest.mark.parametrize("retriever_cls", ALL_RETRIEVERS)
    def test_len(self, retriever_cls):
        retriever = retriever_cls()
        retriever.add_image(tinted(0, (0.1, 0.1, 0.1), "a"))
        assert len(retriever) == 1

    @pytest.mark.parametrize("retriever_cls", ALL_RETRIEVERS)
    def test_color_discrimination(self, retriever_cls):
        """Red-ish queries rank red-ish images above blue-ish ones."""
        retriever = retriever_cls()
        reds = [tinted(i, (0.6, 0.05, 0.05), f"red-{i}") for i in range(3)]
        blues = [tinted(i + 10, (0.05, 0.05, 0.6), f"blue-{i}")
                 for i in range(3)]
        retriever.add_images(reds + blues)
        top3 = [name for name, _ in
                retriever.rank(tinted(77, (0.6, 0.05, 0.05), "q"), k=3)]
        assert all(name.startswith("red") for name in top3)


class TestWbiis:
    def test_rejects_bad_side(self):
        with pytest.raises(ParameterError):
            WbiisRetriever(side=100)

    def test_rejects_bad_margin(self):
        with pytest.raises(ParameterError):
            WbiisRetriever(variance_margin=0.0)

    def test_variance_screening_never_starves_results(self):
        retriever = WbiisRetriever(variance_margin=0.01, refine_pool=10)
        images = [render_scene("sunset", seed=i, size=(96, 128),
                               name=f"s-{i}") for i in range(5)]
        images += [render_scene("night_sky", seed=i, size=(96, 128),
                                name=f"n-{i}") for i in range(5)]
        retriever.add_images(images)
        ranked = retriever.rank(render_scene("sunset", 99, size=(96, 128)))
        assert len(ranked) == 10  # everything still ranked

    def test_location_sensitivity(self):
        """The failure mode WALRUS fixes: the same object at a different
        location scores a much larger WBIIS distance than in place."""
        retriever = WbiisRetriever()
        base = np.full((128, 128, 3), 0.2)
        left = base.copy()
        left[32:64, 16:48] = (0.9, 0.1, 0.1)
        right = base.copy()
        right[80:112, 90:122] = (0.9, 0.1, 0.1)
        sig_left = retriever._signature(Image(left, "rgb"))
        sig_right = retriever._signature(Image(right, "rgb"))
        moved = retriever._distance(sig_left, sig_right)
        same = retriever._distance(sig_left, sig_left)
        assert moved > same + 0.1


class TestJacobs:
    def test_scale_bin(self):
        assert _scale_bin(0, 0) == 0
        assert _scale_bin(0, 1) == 1
        assert _scale_bin(3, 2) == 3
        assert _scale_bin(100, 2) == 5

    def test_rejects_bad_weights(self):
        with pytest.raises(ParameterError):
            JacobsRetriever(weights=((1.0,),))

    def test_signature_sparsity(self):
        retriever = JacobsRetriever(kept_coefficients=40)
        signature = retriever._signature(
            render_scene("forest", 3, size=(96, 128)))
        for c in range(3):
            kept = len(signature.positives[c]) + len(signature.negatives[c])
            assert kept <= 40

    def test_identical_images_minimize_score(self):
        retriever = JacobsRetriever()
        image = render_scene("ocean", 8, size=(96, 128))
        sig = retriever._signature(image)
        other = retriever._signature(render_scene("ocean", 9,
                                                  size=(96, 128)))
        assert retriever._distance(sig, sig) <= retriever._distance(sig,
                                                                    other)


class TestHistogram:
    def test_translation_invariance(self):
        """Histograms don't care where the object is — by design."""
        retriever = HistogramRetriever()
        base = np.full((64, 64, 3), 0.2)
        left = base.copy()
        left[10:30, 10:30] = (0.9, 0.1, 0.1)
        right = base.copy()
        right[40:60, 40:60] = (0.9, 0.1, 0.1)
        a = retriever._signature(Image(left, "rgb"))
        b = retriever._signature(Image(right, "rgb"))
        assert retriever._distance(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_histogram_normalized(self, rng):
        retriever = HistogramRetriever(bins_per_channel=4)
        histogram = retriever._signature(
            Image(rng.uniform(size=(32, 32, 3))))
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram.shape == (64,)

    @pytest.mark.parametrize("distance", ["l1", "l2", "quadratic"])
    def test_distance_kinds(self, rng, distance):
        retriever = HistogramRetriever(distance=distance)
        a = retriever._signature(Image(rng.uniform(size=(16, 16, 3))))
        b = retriever._signature(Image(rng.uniform(size=(16, 16, 3))))
        assert retriever._distance(a, a) == pytest.approx(0.0, abs=1e-9)
        assert retriever._distance(a, b) >= 0.0

    def test_quadratic_softens_bin_boundaries(self):
        """Perceptually close colors in adjacent bins score closer under
        the quadratic form than under L1."""
        retriever_l1 = HistogramRetriever(distance="l1", bins_per_channel=8)
        retriever_q = HistogramRetriever(distance="quadratic",
                                         bins_per_channel=8)
        near_a = Image(np.full((8, 8, 3), 0.49))
        near_b = Image(np.full((8, 8, 3), 0.51))   # adjacent bin
        far = Image(np.full((8, 8, 3), 0.95))
        for retriever in (retriever_l1, retriever_q):
            a = retriever._signature(near_a)
            b = retriever._signature(near_b)
            f = retriever._signature(far)
            if retriever is retriever_l1:
                # L1 sees adjacent-bin and far-bin as equally different.
                assert retriever._distance(a, b) == pytest.approx(
                    retriever._distance(a, f))
            else:
                assert retriever._distance(a, b) < retriever._distance(a, f)

    def test_rejects_bad_distance(self):
        with pytest.raises(ParameterError):
            HistogramRetriever(distance="emd")
