"""Depth tests for WBIIS's three-step search machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.wbiis import WbiisRetriever
from repro.datasets.generator import render_scene
from repro.imaging.image import Image


def collection(count: int = 12) -> list[Image]:
    labels = ["sunset", "ocean", "forest", "night_sky"]
    return [render_scene(labels[i % 4], seed=100 + i,
                         size=(96, 128), name=f"img-{i}")
            for i in range(count)]


class TestSignatureStructure:
    def test_block_shapes(self):
        retriever = WbiisRetriever()
        signature = retriever._signature(render_scene("ocean", 1,
                                                      size=(96, 128)))
        assert signature.coarse.shape == (3, 8, 8)
        assert signature.fine.shape == (3, 16, 16)
        assert signature.deviation >= 0

    def test_side_controls_levels(self):
        retriever = WbiisRetriever(side=256)
        signature = retriever._signature(render_scene("ocean", 1,
                                                      size=(96, 128)))
        # Regardless of side, blocks stay 8x8 / 16x16.
        assert signature.coarse.shape == (3, 8, 8)
        assert signature.fine.shape == (3, 16, 16)

    def test_deviation_separates_flat_from_busy(self):
        retriever = WbiisRetriever()
        flat = retriever._signature(Image(np.full((64, 64, 3), 0.5)))
        busy = retriever._signature(render_scene("brick_wall", 2,
                                                 size=(96, 128)))
        assert busy.deviation > flat.deviation


class TestThreeStepSearch:
    def test_rank_returns_everything(self):
        retriever = WbiisRetriever(refine_pool=3)
        images = collection()
        retriever.add_images(images)
        ranked = retriever.rank(images[0])
        assert len(ranked) == len(images)
        assert ranked[0][0] == "img-0"

    def test_pool_reordering_limited_to_pool(self):
        """Images outside the refine pool keep their coarse order."""
        retriever = WbiisRetriever(refine_pool=4,
                                   variance_margin=None)
        images = collection()
        retriever.add_images(images)
        query = images[0]
        ranked = [name for name, _ in retriever.rank(query)]
        coarse_order = sorted(
            range(len(images)),
            key=lambda i: retriever._block_distance(
                retriever._signature(query).coarse,
                retriever._signatures[i].coarse))
        tail_expected = [f"img-{i}" for i in coarse_order[4:]]
        assert ranked[4:] == tail_expected

    def test_channel_weights_affect_distance(self):
        luma_heavy = WbiisRetriever(channel_weights=(10.0, 0.1, 0.1))
        chroma_heavy = WbiisRetriever(channel_weights=(0.1, 10.0, 10.0))
        a = render_scene("sunset", 3, size=(96, 128))
        b = render_scene("sunset", 4, size=(96, 128))
        sig_l = (luma_heavy._signature(a), luma_heavy._signature(b))
        sig_c = (chroma_heavy._signature(a), chroma_heavy._signature(b))
        assert luma_heavy._distance(*sig_l) != pytest.approx(
            chroma_heavy._distance(*sig_c))

    def test_variance_screen_shrinks_coarse_work(self):
        """With a tight margin, candidates with very different coarse
        deviation are screened out (but results still fill up from the
        coarse ordering)."""
        retriever = WbiisRetriever(variance_margin=0.05, refine_pool=2)
        images = collection()
        retriever.add_images(images)
        ranked = retriever.rank(images[0], k=5)
        assert len(ranked) == 5

    def test_k_parameter(self):
        retriever = WbiisRetriever()
        retriever.add_images(collection(6))
        assert len(retriever.rank(render_scene("ocean", 9,
                                               size=(96, 128)), k=2)) == 2
