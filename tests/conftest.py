"""Shared fixtures for the WALRUS reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import ExtractionParameters
from repro.imaging.draw import Canvas, draw_flower
from repro.imaging.image import Image


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG per test."""
    return np.random.default_rng(1999)


@pytest.fixture
def rgb_image(rng: np.random.Generator) -> Image:
    """A random 32x48 RGB image."""
    return Image(rng.uniform(size=(32, 48, 3)), "rgb", "random-rgb")


@pytest.fixture
def gray_image(rng: np.random.Generator) -> Image:
    """A random 32x32 single-channel image."""
    return Image(rng.uniform(size=(32, 32, 1)), "gray", "random-gray")


def make_flower_image(height: int = 64, width: int = 64, *,
                      cy: float | None = None, cx: float | None = None,
                      radius: float = 16.0, name: str = "flower",
                      background: tuple[float, float, float] = (0.1, 0.45, 0.12),
                      ) -> Image:
    """A flower object on a green background at a controlled position."""
    canvas = Canvas(height, width, background)
    draw_flower(canvas,
                cy if cy is not None else height / 2,
                cx if cx is not None else width / 2,
                radius, (0.85, 0.1, 0.1), (0.9, 0.8, 0.2))
    return canvas.to_image(name=name)


@pytest.fixture
def flower_image() -> Image:
    return make_flower_image()


@pytest.fixture
def flower_factory():
    """The :func:`make_flower_image` helper as a fixture, importable
    from any test directory."""
    return make_flower_image


@pytest.fixture
def fast_params() -> ExtractionParameters:
    """Small-window extraction parameters that keep tests quick."""
    return ExtractionParameters(window_min=16, window_max=32, stride=8,
                                cluster_threshold=0.05)
