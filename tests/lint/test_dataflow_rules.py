"""The dataflow rules R009–R012: lock discipline, lock ordering,
deadline threading, mmap-view escape.

Each rule gets positive fixtures (the violation is flagged), negative
fixtures (idiomatic code stays clean) and a suppression fixture
(``# lint: allow[...]`` wins).  R009/R011/R012 are per-file rules
checked through ``rule.check``; R010 is a project rule driven through
``start_run``/``check``/``finish`` like the runner does.
"""

import textwrap

from tools.lint.engine import SourceFile, lint_source
from tools.lint.rules.deadline_threading import DeadlineThreadingRule
from tools.lint.rules.lock_discipline import LockDisciplineRule
from tools.lint.rules.lock_ordering import LockOrderingRule
from tools.lint.rules.view_escape import ViewEscapeRule

SERVER_PATH = "src/repro/server/fixture.py"
CORE_PATH = "src/repro/core/fixture.py"


def parse(snippet, path=SERVER_PATH):
    return SourceFile.parse(path, textwrap.dedent(snippet))


def check(rule, source):
    """Run one rule the way the runner does (suppressions honored)."""
    return lint_source(source, [rule])


class TestR009LockDiscipline:
    GUARDED_CLASS = """
        import threading

        class Box:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._count = 0  # guarded-by: _lock
                self._items = []  # guarded-by: _lock
    """

    def test_flags_unlocked_write(self):
        source = parse(self.GUARDED_CLASS + """
        def bump(box: Box) -> None:
            box._count += 1
        """)
        findings = check(LockDisciplineRule(), source)
        assert [f.code for f in findings] == ["R009"]
        assert "Box._count" in findings[0].message

    def test_flags_unlocked_method_write_and_mutator(self):
        source = parse(self.GUARDED_CLASS + """
        class User:
            def poke(self, box: Box) -> None:
                box._count = 5
                box._items.append(1)
        """)
        findings = check(LockDisciplineRule(), source)
        assert len(findings) == 2
        assert all(f.code == "R009" for f in findings)

    def test_flags_unlocked_keyed_write(self):
        source = parse("""
            import threading

            class Table:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._rows = {}  # guarded-by: _lock

                def put(self, key, value) -> None:
                    self._rows[key] = value
        """)
        findings = check(LockDisciplineRule(), source)
        assert [f.code for f in findings] == ["R009"]

    def test_passes_locked_writes(self):
        source = parse(self.GUARDED_CLASS + """
        def bump(box: Box) -> None:
            with box._lock:
                box._count += 1
                box._items.append(1)
        """)
        assert check(LockDisciplineRule(), source) == []

    def test_init_writes_exempt_but_class_attrs_are_not(self):
        source = parse("""
            import threading

            class Log:
                _N = 0  # guarded-by: _LOCK
                _LOCK = threading.Lock()

                def __init__(self) -> None:
                    self._seq = 0  # guarded-by: _LOCK
                    self._seq = 1
                    Log._N += 1
        """)
        findings = check(LockDisciplineRule(), source)
        assert len(findings) == 1
        assert "Log._N" in findings[0].message

    def test_cross_object_guard_through_attribute(self):
        source = parse("""
            import threading

            class Plan:
                def __init__(self) -> None:
                    self.lock = threading.Lock()
                    self.ops = 0  # guarded-by: lock

            class Worker:
                def __init__(self, plan: Plan) -> None:
                    self.plan = plan

                def good(self) -> None:
                    with self.plan.lock:
                        self.plan.ops += 1

                def bad(self) -> None:
                    self.plan.ops += 1
        """)
        findings = check(LockDisciplineRule(), source)
        assert len(findings) == 1
        assert "Plan.ops" in findings[0].message

    def test_standalone_comment_annotates_next_line(self):
        source = parse("""
            import threading

            class Wide:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    # guarded-by: _lock
                    self._table = {}

                def clobber(self) -> None:
                    self._table = {}
        """)
        findings = check(LockDisciplineRule(), source)
        assert [f.code for f in findings] == ["R009"]

    def test_allow_comment_suppresses(self):
        source = parse(self.GUARDED_CLASS + """
        def bump(box: Box) -> None:
            box._count += 1  # lint: allow[R009]
        """)
        assert check(LockDisciplineRule(), source) == []

    def test_outside_jurisdiction(self):
        rule = LockDisciplineRule()
        assert not rule.applies_to("src/repro/core/matching.py")
        assert not rule.applies_to("tests/server/test_app.py")
        assert rule.applies_to("src/repro/server/app.py")
        assert rule.applies_to("src/repro/observability/registry.py")
        assert rule.applies_to("src/repro/index/faults.py")


def run_project_rule(rule, sources):
    rule.start_run()
    findings = []
    for source in sources:
        findings.extend(check(rule, source))
    for finding in rule.finish():
        matching = [s for s in sources if s.path == finding.path]
        if not matching or not matching[0].suppresses(finding):
            findings.append(finding)
    return findings


class TestR010LockOrdering:
    def test_flags_opposite_order(self):
        source = parse("""
            import threading

            class Pair:
                def __init__(self) -> None:
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self) -> None:
                    with self._a:
                        with self._b:
                            pass

                def backward(self) -> None:
                    with self._b:
                        with self._a:
                            pass
        """)
        findings = run_project_rule(LockOrderingRule(), [source])
        assert findings and all(f.code == "R010" for f in findings)
        assert "cycle" in findings[0].message

    def test_flags_self_deadlock_through_call(self):
        source = parse("""
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def outer(self) -> None:
                    with self._lock:
                        self.inner()

                def inner(self) -> None:
                    with self._lock:
                        pass
        """)
        findings = run_project_rule(LockOrderingRule(), [source])
        assert [f.code for f in findings] == ["R010"]
        assert "Box._lock" in findings[0].message

    def test_reentrant_lock_self_acquisition_allowed(self):
        source = parse("""
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.RLock()

                def outer(self) -> None:
                    with self._lock:
                        self.inner()

                def inner(self) -> None:
                    with self._lock:
                        pass
        """)
        assert run_project_rule(LockOrderingRule(), [source]) == []

    def test_consistent_order_is_clean(self):
        source = parse("""
            import threading

            class Pair:
                def __init__(self) -> None:
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self) -> None:
                    with self._a:
                        with self._b:
                            pass

                def two(self) -> None:
                    with self._a:
                        with self._b:
                            pass
        """)
        assert run_project_rule(LockOrderingRule(), [source]) == []

    def test_cross_file_cycle(self):
        first = parse("""
            import threading
            from other import Right

            class Left:
                def __init__(self, right: Right) -> None:
                    self._lock = threading.Lock()
                    self.right = right

                def go(self) -> None:
                    with self._lock:
                        with self.right._lock:
                            pass
        """, path="src/repro/server/left.py")
        second = parse("""
            import threading
            from left import Left

            class Right:
                def __init__(self, left: Left) -> None:
                    self._lock = threading.Lock()
                    self.left = left

                def go(self) -> None:
                    with self._lock:
                        with self.left._lock:
                            pass
        """, path="src/repro/server/right.py")
        findings = run_project_rule(LockOrderingRule(), [first, second])
        assert findings and all(f.code == "R010" for f in findings)

    def test_allow_comment_suppresses_finish_findings(self):
        source = parse("""
            import threading

            class Pair:
                def __init__(self) -> None:
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self) -> None:
                    with self._a:
                        with self._b:  # lint: allow[R010]
                            pass

                def backward(self) -> None:
                    with self._b:
                        with self._a:  # lint: allow[R010]
                            pass
        """)
        assert run_project_rule(LockOrderingRule(), [source]) == []


class TestR011DeadlineThreading:
    def test_flags_unconsulted_deadline(self):
        source = parse("""
            def search(items, deadline=None):
                return [item for item in items]
        """, path=CORE_PATH)
        findings = check(DeadlineThreadingRule(), source)
        assert [f.code for f in findings] == ["R011"]
        assert "never consults" in findings[0].message

    def test_flags_while_loop_without_check(self):
        source = parse("""
            def drain(queue, deadline=None):
                if deadline is not None:
                    deadline.check("drain")
                while queue:
                    queue.pop()
        """, path=CORE_PATH)
        findings = check(DeadlineThreadingRule(), source)
        assert [f.code for f in findings] == ["R011"]
        assert "while loop" in findings[0].message

    def test_flags_dropped_forwarding(self):
        source = parse("""
            def inner(deadline=None):
                if deadline is not None:
                    deadline.check("inner")

            def outer(deadline=None):
                if deadline is not None:
                    deadline.check("outer")
                inner()
        """, path=CORE_PATH)
        findings = check(DeadlineThreadingRule(), source)
        assert [f.code for f in findings] == ["R011"]
        assert "drops" in findings[0].message

    def test_passes_checked_loop_forwarding_and_explicit_none(self):
        source = parse("""
            def inner(deadline=None):
                if deadline is not None:
                    deadline.check("inner")

            def outer(items, deadline=None):
                while items:
                    if deadline is not None:
                        deadline.check("outer")
                    items.pop()
                inner(deadline=deadline)
                inner(deadline=None)
        """, path=CORE_PATH)
        assert check(DeadlineThreadingRule(), source) == []

    def test_closure_consult_counts(self):
        source = parse("""
            def search(node, deadline=None):
                def recurse(child):
                    if deadline is not None:
                        deadline.check("search")
                    for grandchild in child:
                        recurse(grandchild)
                recurse(node)
        """, path=CORE_PATH)
        assert check(DeadlineThreadingRule(), source) == []

    def test_enclosing_loop_consult_covers_inner_while(self):
        source = parse("""
            def scan(rows, deadline=None):
                for row in rows:
                    if deadline is not None:
                        deadline.check("scan")
                    while row:
                        row.pop()
        """, path=CORE_PATH)
        assert check(DeadlineThreadingRule(), source) == []

    def test_allow_comment_suppresses(self):
        source = parse("""
            def drain(queue, deadline=None):
                if deadline is not None:
                    deadline.check("drain")
                while queue:  # lint: allow[R011]
                    queue.pop()
        """, path=CORE_PATH)
        assert check(DeadlineThreadingRule(), source) == []


class TestR012ViewEscape:
    def test_flags_attribute_store(self):
        source = parse("""
            import numpy as np

            class Cache:
                def load(self, payload) -> None:
                    self._bounds = np.frombuffer(payload, dtype=np.float64)
        """, path=CORE_PATH)
        findings = check(ViewEscapeRule(), source)
        assert [f.code for f in findings] == ["R012"]

    def test_flags_store_through_view_preserving_ops(self):
        source = parse("""
            import numpy as np

            class Cache:
                def load(self, payload, key) -> None:
                    rows = np.frombuffer(payload, dtype=np.uint8)
                    shaped = rows.reshape(4, 4)
                    self._pages[key] = shaped[:2]
        """, path=CORE_PATH)
        findings = check(ViewEscapeRule(), source)
        assert [f.code for f in findings] == ["R012"]

    def test_flags_container_append(self):
        source = parse("""
            import numpy as np

            class Cache:
                def load(self, payload) -> None:
                    self._held.append(np.frombuffer(payload, dtype=np.uint8))
        """, path=CORE_PATH)
        findings = check(ViewEscapeRule(), source)
        assert [f.code for f in findings] == ["R012"]

    def test_copying_operations_launder_the_taint(self):
        source = parse("""
            import numpy as np

            class Cache:
                def load(self, payload) -> None:
                    view = np.frombuffer(payload, dtype=np.float64)
                    self._bounds = view.copy()
                    self._floats = np.frombuffer(payload, dtype=np.uint8).astype(np.float64)
                    self._bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        """, path=CORE_PATH)
        assert check(ViewEscapeRule(), source) == []

    def test_returning_a_view_is_allowed(self):
        source = parse("""
            import numpy as np

            def decode(payload):
                return np.frombuffer(payload, dtype=np.float64)
        """, path=CORE_PATH)
        assert check(ViewEscapeRule(), source) == []

    def test_lifecycle_owners_exempt(self):
        rule = ViewEscapeRule()
        assert not rule.applies_to("src/repro/index/nodecodec.py")
        assert not rule.applies_to("src/repro/index/storage_v3.py")
        assert rule.applies_to("src/repro/index/storage.py")

    def test_allow_comment_suppresses(self):
        source = parse("""
            import numpy as np

            class Cache:
                def load(self, payload) -> None:
                    self._bounds = np.frombuffer(payload, dtype=np.float64)  # lint: allow[R012]
        """, path=CORE_PATH)
        assert check(ViewEscapeRule(), source) == []
