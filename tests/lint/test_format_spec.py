"""R013 — format-spec conformance between docs/FORMAT.md and the
storage modules.

The real tree must conform, and — the part that matters — injected
drift on either side of the contract must produce findings: a tampered
doc against the real code, tampered code against the real doc, a
reworded-away anchor, and a missing doc.
"""

import os
import shutil

from tools.lint.engine import run_paths
from tools.lint.rules.format_spec import FormatSpecRule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
INDEX_DIR = os.path.join(REPO_ROOT, "src", "repro", "index")
DOC_PATH = os.path.join(REPO_ROOT, "docs", "FORMAT.md")


def read_doc():
    with open(DOC_PATH, "r", encoding="utf-8") as stream:
        return stream.read()


def run_against_doc(doc_path, paths=(INDEX_DIR,)):
    return run_paths(list(paths), [FormatSpecRule(doc_path=doc_path)])


def test_real_tree_conforms():
    findings = run_paths([INDEX_DIR], [FormatSpecRule()])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_doc_drift_is_caught(tmp_path):
    text = read_doc()
    assert "<8sI4x" in text and "offset 128" in text
    tampered = tmp_path / "FORMAT.md"
    tampered.write_text(text.replace("<8sI4x", "<8sH4x")
                            .replace("offset 128", "offset 120"))
    findings = run_against_doc(str(tampered))
    assert len(findings) == 2, "\n".join(f.render() for f in findings)
    assert all(f.code == "R013" for f in findings)
    assert all(f.path.endswith("storage.py") for f in findings)
    messages = " | ".join(f.message for f in findings)
    assert "_SUPER" in messages and "_DATA_START" in messages


def test_code_drift_is_caught(tmp_path):
    original = os.path.join(INDEX_DIR, "storage.py")
    with open(original, "r", encoding="utf-8") as stream:
        code = stream.read()
    assert 'struct.Struct("<QII")' in code
    drifted = tmp_path / "storage.py"
    drifted.write_text(code.replace('struct.Struct("<QII")',
                                    'struct.Struct("<QQI")'))
    findings = run_against_doc(DOC_PATH, paths=[str(tmp_path)])
    assert findings, "changing _RECORD's layout must trip R013"
    assert all(f.code == "R013" for f in findings)
    assert any("_RECORD" in f.message and "'<QQI'" in f.message
               for f in findings)


def test_reworded_anchor_fails_loudly(tmp_path):
    # Deleting the doc sentence the check anchors on must not silently
    # disable the check.
    text = read_doc()
    assert "heap from offset" in text
    tampered = tmp_path / "FORMAT.md"
    tampered.write_text(text.replace("heap from offset",
                                     "payload area at offset"))
    findings = run_against_doc(str(tampered))
    assert len(findings) == 1, "\n".join(f.render() for f in findings)
    assert "was not found" in findings[0].message
    assert "_DATA_START" in findings[0].message


def test_missing_doc_is_a_finding(tmp_path):
    findings = run_against_doc(str(tmp_path / "FORMAT.md"))
    assert len(findings) == 1
    assert "no checkable spec" in findings[0].message


def test_undocumented_magic_is_caught(tmp_path):
    index_copy = tmp_path / "index"
    index_copy.mkdir()
    for name in ("storage.py", "storage_v3.py", "nodecodec.py"):
        shutil.copy(os.path.join(INDEX_DIR, name), index_copy / name)
    storage = index_copy / "storage.py"
    code = storage.read_text()
    assert 'b"WALRUSPG"' in code
    storage.write_text(code.replace('b"WALRUSPG"', 'b"WALRUSPX"'))
    findings = run_against_doc(DOC_PATH, paths=[str(index_copy)])
    messages = [f.message for f in findings]
    assert any("WALRUSPX" in m and "not documented" in m
               for m in messages), messages
    assert any("WALRUSPG" in m and "no storage constant" in m
               for m in messages), messages


def test_rule_ignores_non_layout_modules():
    rule = FormatSpecRule()
    assert not rule.applies_to("src/repro/index/rstar.py")
    assert not rule.applies_to("tests/index/storage.py")
    assert rule.applies_to("src/repro/index/storage.py")
    assert rule.applies_to("src/repro/index/nodecodec.py")
