"""Engine behavior: discovery, suppression, reporting, exit codes."""

import ast
import json
import textwrap

import pytest

from tools.lint.engine import (Finding, Rule, SourceFile, default_rules,
                               discover_files, lint_source, main,
                               run_paths)


def parse(snippet, path="src/repro/core/snippet.py"):
    return SourceFile.parse(path, textwrap.dedent(snippet))


class TestSuppressionParsing:
    def test_single_code(self):
        source = parse("x = 1  # lint: allow[R001]\n")
        assert source.allowed == {1: frozenset({"R001"})}

    def test_multiple_codes(self):
        source = parse("x = 1  # lint: allow[R001, R003]\n")
        assert source.allowed == {1: frozenset({"R001", "R003"})}

    def test_wildcard(self):
        source = parse("x = 1  # lint: allow[*]\n")
        finding = Finding(path=source.path, line=1, col=0, code="R999",
                          message="anything")
        assert source.suppresses(finding)

    def test_other_line_does_not_suppress(self):
        source = parse("x = 1  # lint: allow[R001]\ny = 2\n")
        finding = Finding(path=source.path, line=2, col=0, code="R001",
                          message="m")
        assert not source.suppresses(finding)

    def test_other_code_does_not_suppress(self):
        source = parse("x = 1  # lint: allow[R002]\n")
        finding = Finding(path=source.path, line=1, col=0, code="R001",
                          message="m")
        assert not source.suppresses(finding)

    def test_multiple_allow_comments_on_one_line_merge(self):
        source = parse(
            "x = 1  # lint: allow[R001] # lint: allow[R009, R012]\n")
        assert source.allowed == {1: frozenset({"R001", "R009", "R012"})}
        for code in ("R001", "R009", "R012"):
            assert source.suppresses(Finding(
                path=source.path, line=1, col=0, code=code, message="m"))
        assert not source.suppresses(Finding(
            path=source.path, line=1, col=0, code="R002", message="m"))


class TestPositionClamping:
    def test_column_past_line_end_is_clamped(self):
        source = parse("x = 1\n")
        node = ast.Name(id="x", lineno=1, col_offset=400)
        assert source.position(node) == (1, 4)

    def test_line_outside_file_is_clamped(self):
        source = parse("x = 1\ny = 2\n")
        node = ast.Name(id="y", lineno=99, col_offset=0)
        assert source.position(node) == (2, 0)

    def test_clamped_findings_still_match_allow_comments(self):
        # The point of clamping: a finding anchored by a buggy parser
        # position must still land on the line its allow-comment is on.
        source = parse("x = f'{1}'  # lint: allow[R777]\n")
        node = ast.Constant(value=1, lineno=1, col_offset=500)

        class FStringRule(Rule):
            code = "R777"

            def check(self, src):
                yield self.finding(src, node, "inside an f-string")

        assert lint_source(source, [FStringRule()]) == []


class TestDiscovery:
    def test_walks_directories_and_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("not python")
        found = discover_files([str(tmp_path)])
        assert found == [str(tmp_path / "pkg" / "a.py")]

    def test_accepts_single_files(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert discover_files([str(target)]) == [str(target)]


class TestRunner:
    def test_syntax_error_becomes_e999(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = run_paths([str(bad)])
        assert len(findings) == 1
        assert findings[0].code == "E999"

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("CONSTANT = 1\n")
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_exit_nonzero_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro"
        bad.mkdir(parents=True)
        (bad / "mod.py").write_text('raise ValueError("boom")\n')
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        # Findings render as path:line:col CODE message.
        assert f"{bad / 'mod.py'}:1:0 R001" in out

    def test_select_unknown_code_is_an_error(self, tmp_path):
        assert main(["--select", "R999", str(tmp_path)]) == 2

    def test_select_runs_only_requested_rules(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text('raise ValueError("boom")\ndef f(x): pass\n')
        assert main(["--select", "R005", str(bad)]) == 1

    def test_list_rules_mentions_all_codes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R009",
                     "R010", "R011", "R012", "R013"):
            assert code in out


class TestJsonFormat:
    def test_clean_tree_emits_empty_report_and_exit_zero(
            self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("CONSTANT = 1\n")
        assert main(["--format", "json", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report == {"version": 1, "count": 0, "findings": []}

    def test_findings_serialize_and_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro"
        bad.mkdir(parents=True)
        (bad / "mod.py").write_text('raise ValueError("boom")\n')
        assert main(["--format", "json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["count"] == len(report["findings"]) == 1
        finding = report["findings"][0]
        assert finding["code"] == "R001"
        assert finding["file"] == str(bad / "mod.py")
        assert finding["line"] == 1
        assert isinstance(finding["col"], int)
        assert "ValueError" in finding["message"]


class TestRuleApi:
    def test_default_rules_are_sorted_and_complete(self):
        codes = [rule.code for rule in default_rules()]
        assert codes == sorted(codes)
        assert {"R001", "R002", "R003", "R004", "R005"} <= set(codes)

    def test_rules_skip_files_outside_their_jurisdiction(self):
        source = SourceFile.parse("tests/unit/test_x.py",
                                  'raise ValueError("fine in tests")\n')
        assert lint_source(source, default_rules()) == []

    def test_base_rule_check_is_abstract(self):
        source = parse("x = 1\n")
        with pytest.raises(NotImplementedError):
            list(Rule().check(source))


class CountingProjectRule(Rule):
    """Cross-file rule fixture: reports the total file count at finish."""

    code = "R998"
    project = True

    def applies_to(self, path):
        return True

    def start_run(self):
        self.seen = []

    def check(self, source):
        self.seen.append(source.path)
        return iter(())

    def finish(self):
        for path in self.seen:
            yield Finding(path=path, line=1, col=0, code=self.code,
                          message=f"one of {len(self.seen)} files")


class TestProjectRules:
    def test_finish_sees_whole_run_state(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        findings = run_paths([str(tmp_path)], [CountingProjectRule()])
        assert len(findings) == 2
        assert all("of 2 files" in f.message for f in findings)

    def test_start_run_resets_state_between_runs(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        rule = CountingProjectRule()
        run_paths([str(tmp_path)], [rule])
        findings = run_paths([str(tmp_path)], [rule])
        assert len(findings) == 1
        assert "of 1 files" in findings[0].message

    def test_finish_findings_respect_suppressions(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1  # lint: allow[R998]\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        findings = run_paths([str(tmp_path)], [CountingProjectRule()])
        assert [f.path for f in findings] == [str(tmp_path / "b.py")]
