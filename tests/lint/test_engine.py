"""Engine behavior: discovery, suppression, reporting, exit codes."""

import textwrap

import pytest

from tools.lint.engine import (Finding, Rule, SourceFile, default_rules,
                               discover_files, lint_source, main,
                               run_paths)


def parse(snippet, path="src/repro/core/snippet.py"):
    return SourceFile.parse(path, textwrap.dedent(snippet))


class TestSuppressionParsing:
    def test_single_code(self):
        source = parse("x = 1  # lint: allow[R001]\n")
        assert source.allowed == {1: frozenset({"R001"})}

    def test_multiple_codes(self):
        source = parse("x = 1  # lint: allow[R001, R003]\n")
        assert source.allowed == {1: frozenset({"R001", "R003"})}

    def test_wildcard(self):
        source = parse("x = 1  # lint: allow[*]\n")
        finding = Finding(path=source.path, line=1, col=0, code="R999",
                          message="anything")
        assert source.suppresses(finding)

    def test_other_line_does_not_suppress(self):
        source = parse("x = 1  # lint: allow[R001]\ny = 2\n")
        finding = Finding(path=source.path, line=2, col=0, code="R001",
                          message="m")
        assert not source.suppresses(finding)

    def test_other_code_does_not_suppress(self):
        source = parse("x = 1  # lint: allow[R002]\n")
        finding = Finding(path=source.path, line=1, col=0, code="R001",
                          message="m")
        assert not source.suppresses(finding)


class TestDiscovery:
    def test_walks_directories_and_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("not python")
        found = discover_files([str(tmp_path)])
        assert found == [str(tmp_path / "pkg" / "a.py")]

    def test_accepts_single_files(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert discover_files([str(target)]) == [str(target)]


class TestRunner:
    def test_syntax_error_becomes_e999(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = run_paths([str(bad)])
        assert len(findings) == 1
        assert findings[0].code == "E999"

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("CONSTANT = 1\n")
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_exit_nonzero_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro"
        bad.mkdir(parents=True)
        (bad / "mod.py").write_text('raise ValueError("boom")\n')
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        # Findings render as path:line:col CODE message.
        assert f"{bad / 'mod.py'}:1:0 R001" in out

    def test_select_unknown_code_is_an_error(self, tmp_path):
        assert main(["--select", "R999", str(tmp_path)]) == 2

    def test_select_runs_only_requested_rules(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text('raise ValueError("boom")\ndef f(x): pass\n')
        assert main(["--select", "R005", str(bad)]) == 1

    def test_list_rules_mentions_all_codes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005"):
            assert code in out


class TestRuleApi:
    def test_default_rules_are_sorted_and_complete(self):
        codes = [rule.code for rule in default_rules()]
        assert codes == sorted(codes)
        assert {"R001", "R002", "R003", "R004", "R005"} <= set(codes)

    def test_rules_skip_files_outside_their_jurisdiction(self):
        source = SourceFile.parse("tests/unit/test_x.py",
                                  'raise ValueError("fine in tests")\n')
        assert lint_source(source, default_rules()) == []

    def test_base_rule_check_is_abstract(self):
        source = parse("x = 1\n")
        with pytest.raises(NotImplementedError):
            list(Rule().check(source))
