"""The repository must satisfy its own lint rules.

This is the always-on replacement for the old CI grep job: if any
subpackage reintroduces a bare ``ValueError``, unseeded randomness, an
exact float comparison in a hot path, an unpicklable pool submission,
or an unannotated public function, this test fails locally before CI
does.
"""

import os

from tools.lint.engine import run_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def test_src_tree_is_lint_clean():
    findings = run_paths([os.path.join(REPO_ROOT, "src")])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_lint_framework_is_lint_clean():
    findings = run_paths([os.path.join(REPO_ROOT, "tools")])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_benchmarks_and_scripts_are_lint_clean():
    # The expanded jurisdiction: harnesses and automation are held to
    # the same rules as the library.
    findings = run_paths([os.path.join(REPO_ROOT, "benchmarks"),
                          os.path.join(REPO_ROOT, "scripts")])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)
