"""Fixture-driven tests: one positive hit, one negative pass, and one
allow-comment suppression per rule (plus rule-specific edge cases)."""

import textwrap

from tools.lint.engine import SourceFile, lint_source
from tools.lint.rules import (BareExceptionRule, BlockingTimeoutRule,
                              DirectTimingRule,
                              FloatEqualityRule,
                              LoggingHandlerIsolationRule,
                              PicklableSubmissionRule,
                              PublicAnnotationsRule,
                              UnseededRandomnessRule)


def check(rule, snippet, path="src/repro/core/snippet.py"):
    source = SourceFile.parse(path, textwrap.dedent(snippet))
    return lint_source(source, [rule])


class TestR001BareExceptions:
    def test_flags_bare_valueerror(self):
        findings = check(BareExceptionRule(), """\
            def f(x):
                raise ValueError(f"bad {x}")
            """)
        assert [f.code for f in findings] == ["R001"]
        assert findings[0].line == 2

    def test_flags_uncalled_and_exception_and_runtimeerror(self):
        findings = check(BareExceptionRule(), """\
            raise RuntimeError("a")
            raise Exception
            """)
        assert [f.line for f in findings] == [1, 2]

    def test_passes_taxonomy_raises(self):
        assert check(BareExceptionRule(), """\
            from repro.exceptions import InvalidParameterError

            def f(x):
                raise InvalidParameterError(f"bad {x}")
            """) == []

    def test_passes_bare_reraise(self):
        assert check(BareExceptionRule(), """\
            try:
                pass
            except Exception:
                raise
            """) == []

    def test_allow_comment_suppresses(self):
        assert check(BareExceptionRule(), """\
            raise ValueError("intentional")  # lint: allow[R001]
            """) == []

    def test_skipped_in_tests_tree(self):
        assert check(BareExceptionRule(), 'raise ValueError("x")\n',
                     path="tests/core/test_x.py") == []


class TestR002UnseededRandomness:
    def test_flags_numpy_module_level_draw(self):
        findings = check(UnseededRandomnessRule(), """\
            import numpy as np
            noise = np.random.rand(3)
            """)
        assert [f.code for f in findings] == ["R002"]

    def test_flags_numpy_seed_and_full_module_name(self):
        findings = check(UnseededRandomnessRule(), """\
            import numpy
            numpy.random.seed(0)
            """)
        assert len(findings) == 1

    def test_flags_stdlib_module_function(self):
        findings = check(UnseededRandomnessRule(), """\
            import random
            x = random.randint(0, 10)
            """)
        assert [f.code for f in findings] == ["R002"]

    def test_passes_explicit_generators(self):
        assert check(UnseededRandomnessRule(), """\
            import random
            import numpy as np

            rng = np.random.default_rng(1999)
            values = rng.normal(size=4)
            stdlib_rng = random.Random(7)
            pick = stdlib_rng.random()
            """) == []

    def test_allow_comment_suppresses(self):
        assert check(UnseededRandomnessRule(), """\
            import numpy as np
            x = np.random.rand()  # lint: allow[R002]
            """) == []


class TestR003FloatEquality:
    def test_flags_equality_against_float_literal(self):
        findings = check(FloatEqualityRule(), """\
            def f(x):
                return x == 0.5
            """)
        assert [f.code for f in findings] == ["R003"]

    def test_flags_noteq_negative_literal_and_float_call(self):
        findings = check(FloatEqualityRule(), """\
            a = b != -1.5
            c = d == float(e)
            """)
        assert [f.line for f in findings] == [1, 2]

    def test_passes_orderings_and_integer_equality(self):
        assert check(FloatEqualityRule(), """\
            def f(x, n):
                return x < 0.5 or x >= 1.0 or n == 3
            """) == []

    def test_only_applies_to_hot_subpackages(self):
        snippet = "x = y == 0.5\n"
        assert check(FloatEqualityRule(), snippet,
                     path="src/repro/datasets/generator.py") == []
        assert check(FloatEqualityRule(), snippet,
                     path="src/repro/wavelets/haar.py") != []
        assert check(FloatEqualityRule(), snippet,
                     path="src/repro/index/rstar.py") != []

    def test_allow_comment_suppresses(self):
        assert check(FloatEqualityRule(),
                     "exact = x == 0.0  # lint: allow[R003]\n") == []


class TestR004PicklableSubmissions:
    def test_flags_lambda(self):
        findings = check(PicklableSubmissionRule(), """\
            def run(pool, items):
                return pool.map(lambda x: x + 1, items)
            """)
        assert [f.code for f in findings] == ["R004"]
        assert "lambda" in findings[0].message

    def test_flags_closure(self):
        findings = check(PicklableSubmissionRule(), """\
            def run(pool, items):
                def helper(x):
                    return x + 1
                return pool.imap_unordered(helper, items)
            """)
        assert [f.code for f in findings] == ["R004"]
        assert "closure" in findings[0].message

    def test_flags_bound_method(self):
        findings = check(PicklableSubmissionRule(), """\
            def run(pool, worker, items):
                return pool.map_async(worker.process, items)
            """)
        assert [f.code for f in findings] == ["R004"]
        assert "bound method" in findings[0].message

    def test_passes_module_level_function(self):
        assert check(PicklableSubmissionRule(), """\
            def extract(x):
                return x + 1

            def run(pool, items):
                return pool.map(extract, items)
            """) == []

    def test_passes_imported_module_attribute(self):
        assert check(PicklableSubmissionRule(), """\
            import os.path

            def run(pool, items):
                return pool.map(os.path.basename, items)
            """) == []

    def test_allow_comment_suppresses(self):
        assert check(PicklableSubmissionRule(), """\
            def run(pool, items):
                return pool.map(lambda x: x, items)  # lint: allow[R004]
            """) == []


class TestR005PublicAnnotations:
    def test_flags_unannotated_parameter(self):
        findings = check(PublicAnnotationsRule(), """\
            def public(x) -> int:
                return x
            """)
        assert [f.code for f in findings] == ["R005"]
        assert "x" in findings[0].message

    def test_flags_missing_return(self):
        findings = check(PublicAnnotationsRule(), """\
            def public(x: int):
                return x
            """)
        assert "return annotation" in findings[0].message

    def test_flags_unannotated_starargs_and_dunders(self):
        findings = check(PublicAnnotationsRule(), """\
            class Thing:
                def __exit__(self, *exc_info) -> None:
                    pass
            """)
        assert [f.code for f in findings] == ["R005"]
        assert "*exc_info" in findings[0].message

    def test_passes_fully_annotated_method_and_skips_self(self):
        assert check(PublicAnnotationsRule(), """\
            class Thing:
                def method(self, x: int, *args: str, **kw: object) -> int:
                    return x

                @staticmethod
                def helper(y: int) -> int:
                    return y

                @classmethod
                def build(cls, z: int) -> "Thing":
                    return cls()
            """) == []

    def test_private_helpers_and_nested_functions_exempt(self):
        assert check(PublicAnnotationsRule(), """\
            def _helper(x):
                def inner(y):
                    return y
                return inner(x)
            """) == []

    def test_allow_comment_suppresses(self):
        assert check(PublicAnnotationsRule(), """\
            def public(x):  # lint: allow[R005]
                return x
            """) == []


class TestR006DirectTiming:
    def test_flags_clock_reads(self):
        findings = check(DirectTimingRule(), """\
            import time
            start = time.perf_counter()
            stamp = time.time()
            mono = time.monotonic_ns()
            """)
        assert [f.code for f in findings] == ["R006"] * 3
        assert [f.line for f in findings] == [2, 3, 4]

    def test_flags_from_import(self):
        findings = check(DirectTimingRule(), """\
            from time import perf_counter
            """)
        assert [f.code for f in findings] == ["R006"]
        assert "Stopwatch" in findings[0].message

    def test_passes_sleep_and_calendar_functions(self):
        assert check(DirectTimingRule(), """\
            import time
            time.sleep(0.1)
            label = time.strftime("%Y-%m-%d")
            """) == []

    def test_passes_observability_primitives(self):
        assert check(DirectTimingRule(), """\
            from repro.observability import Stopwatch, get_metrics

            def f() -> float:
                watch = Stopwatch()
                with get_metrics().timer("f.seconds"):
                    pass
                return watch.elapsed
            """) == []

    def test_observability_layer_exempt(self):
        snippet = "import time\nnow = time.perf_counter()\n"
        assert check(DirectTimingRule(), snippet,
                     path="src/repro/observability/registry.py") == []

    def test_outside_repro_exempt(self):
        snippet = "import time\nnow = time.perf_counter()\n"
        assert check(DirectTimingRule(), snippet,
                     path="tools/lint/engine.py") == []

    def test_allow_comment_suppresses(self):
        assert check(DirectTimingRule(), """\
            import time
            now = time.time()  # lint: allow[R006]
            """) == []


class TestR007LoggingHandlerIsolation:
    def test_flags_handler_construction(self):
        findings = check(LoggingHandlerIsolationRule(), """\
            import logging
            handler = logging.StreamHandler()
            logging.basicConfig(level=logging.INFO)
            """)
        assert [f.code for f in findings] == ["R007"] * 2
        assert [f.line for f in findings] == [2, 3]

    def test_flags_logging_handlers_module(self):
        findings = check(LoggingHandlerIsolationRule(), """\
            import logging.handlers
            h = logging.handlers.RotatingFileHandler("x.log")
            """)
        assert [f.code for f in findings] == ["R007"]
        assert findings[0].line == 2

    def test_flags_handler_imports(self):
        findings = check(LoggingHandlerIsolationRule(), """\
            from logging import StreamHandler
            from logging.handlers import RotatingFileHandler
            """)
        assert [f.code for f in findings] == ["R007"] * 2

    def test_flags_add_and_remove_handler(self):
        findings = check(LoggingHandlerIsolationRule(), """\
            import logging
            logger = logging.getLogger("x")
            logger.addHandler(object())
            logger.removeHandler(object())
            """)
        assert [f.code for f in findings] == ["R007"] * 2
        assert [f.line for f in findings] == [3, 4]

    def test_passes_plain_logging_use(self):
        assert check(LoggingHandlerIsolationRule(), """\
            import logging
            logger = logging.getLogger("x")
            logger.info("hello")
            """) == []

    def test_event_log_module_exempt(self):
        snippet = ("import logging.handlers\n"
                   "h = logging.handlers.RotatingFileHandler('x.log')\n")
        assert check(LoggingHandlerIsolationRule(), snippet,
                     path="src/repro/observability/events.py") == []

    def test_other_observability_modules_not_exempt(self):
        snippet = "import logging\nh = logging.StreamHandler()\n"
        findings = check(LoggingHandlerIsolationRule(), snippet,
                         path="src/repro/observability/export.py")
        assert [f.code for f in findings] == ["R007"]

    def test_outside_repro_exempt(self):
        snippet = "import logging\nlogging.basicConfig()\n"
        assert check(LoggingHandlerIsolationRule(), snippet,
                     path="tools/lint/engine.py") == []

    def test_allow_comment_suppresses(self):
        assert check(LoggingHandlerIsolationRule(), """\
            import logging
            logging.basicConfig()  # lint: allow[R007]
            """) == []


class TestR008BlockingTimeouts:
    PATH = "src/repro/server/app.py"

    def test_flags_bare_wait_like_calls(self):
        findings = check(BlockingTimeoutRule(), """\
            def f(lock, event, thread, queue):
                lock.acquire()
                event.wait()
                thread.join()
                queue.get()
            """, path=self.PATH)
        assert [f.code for f in findings] == ["R008"] * 4
        assert [f.line for f in findings] == [2, 3, 4, 5]

    def test_passes_bounded_and_nonblocking_forms(self):
        assert check(BlockingTimeoutRule(), """\
            def f(lock, event, thread, queue):
                lock.acquire(timeout=1.0)
                lock.acquire(blocking=False)
                lock.acquire(False)
                event.wait(timeout=0.5)
                event.wait(0.5)
                thread.join(timeout=5.0)
                queue.get(timeout=2.0)
            """, path=self.PATH) == []

    def test_positional_args_count_as_bounds(self):
        # dict.get(key) and "sep".join(parts) must not be flagged.
        assert check(BlockingTimeoutRule(), """\
            def f(mapping, parts):
                mapping.get("key")
                return ", ".join(parts)
            """, path=self.PATH) == []

    def test_flags_urlopen_without_timeout(self):
        findings = check(BlockingTimeoutRule(), """\
            import urllib.request

            def f(request):
                return urllib.request.urlopen(request)
            """, path=self.PATH)
        assert [f.code for f in findings] == ["R008"]

    def test_passes_urlopen_with_timeout(self):
        assert check(BlockingTimeoutRule(), """\
            import urllib.request

            def f(request):
                return urllib.request.urlopen(request, timeout=10.0)
            """, path=self.PATH) == []

    def test_scoped_to_server_package(self):
        snippet = "def f(lock):\n    lock.acquire()\n"
        assert check(BlockingTimeoutRule(), snippet,
                     path="src/repro/core/database.py") == []
        assert check(BlockingTimeoutRule(), snippet,
                     path="src/repro/observability/server.py") == []

    def test_allow_comment_suppresses(self):
        assert check(BlockingTimeoutRule(), """\
            def f(lock):
                lock.acquire()  # lint: allow[R008]
            """, path=self.PATH) == []
