"""Fault injection and corruption detection in the file page store."""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import PageCorruptionError, StorageError
from repro.index.faults import (
    FaultInjectingPageStore,
    FaultPlan,
    SimulatedCrash,
    corrupt_page,
)
from repro.index.storage import FilePageStore

pytestmark = pytest.mark.faults


def populated(path, pages=5, buffer_pages=256):
    store = FilePageStore(path, buffer_pages=buffer_pages)
    for index in range(pages):
        page_id = store.allocate()
        store.write(page_id, {"page": page_id, "blob": "x" * 64})
    store.sync()
    return store


class TestChecksums:
    def test_bit_flip_raises_page_corruption(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        offset = corrupt_page(path, 3)
        assert offset > 0
        store = FilePageStore(path)
        with pytest.raises(PageCorruptionError) as excinfo:
            store.read(3)
        assert excinfo.value.page_id == 3
        assert excinfo.value.offset is not None
        # The other pages are untouched.
        for page_id in (0, 1, 2, 4):
            assert store.read(page_id)["page"] == page_id
        store.close()

    def test_corrupt_page_needs_committed_record(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        with pytest.raises(StorageError):
            corrupt_page(path, 99)

    def test_in_flight_bitflips_are_caught(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path, pages=20).close()
        # Enable flips only after construction so the header loads.
        plan = FaultPlan(seed=7)
        store = FaultInjectingPageStore(path, plan=plan)
        plan.bitflip_rate = 1.0
        with pytest.raises(StorageError):
            for page_id in range(20):
                store.read(page_id)

    def test_scan_reports_corruption_with_location(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        corrupt_page(path, 2)
        store = FilePageStore(path, readonly=True)
        report = store.scan()
        store.close()
        assert not report.ok
        bad = [info for info in report.pages if not info.ok]
        assert [info.page_id for info in bad] == [2]
        assert any("page 2" in issue for issue in report.issues)

    def test_scan_clean_store(self, tmp_path):
        path = tmp_path / "pages.db"
        store = populated(path)
        report = store.scan()
        store.close()
        assert report.ok
        assert len(report.pages) == 5


class TestTransientErrors:
    def test_scheduled_read_error_is_retried(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        # Fail the first read attempt; the bounded retry recovers.
        plan = FaultPlan(read_error_schedule=(1,))
        store = FaultInjectingPageStore(path, plan=plan)
        assert store.read(0)["page"] == 0
        store.close()

    def test_persistent_read_errors_become_storage_error(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        store = FilePageStore(path)
        # Every subsequent read fails: schedule far exceeds the retry
        # budget starting from the next read op.
        plan = FaultPlan(read_error_schedule=tuple(range(1, 50)))
        store.close()
        with pytest.raises(StorageError) as excinfo:
            FaultInjectingPageStore(path, plan=plan)
        assert "after" in str(excinfo.value)  # bounded retries exhausted
        assert not isinstance(excinfo.value, PageCorruptionError)


class TestCrashDuringSync:
    def workload(self, path, plan=None):
        """Create, commit a baseline, mutate, and re-sync under faults."""
        if plan is None:
            store = FilePageStore(path, buffer_pages=4)
        else:
            store = FaultInjectingPageStore(path, buffer_pages=4, plan=plan)
        ids = [store.allocate() for _ in range(8)]
        for page_id in ids:
            store.write(page_id, ("v1", page_id))
        store.sync()
        baseline_ops = store.plan.mutation_ops if plan is not None else None
        for page_id in ids[:4]:
            store.write(page_id, ("v2", page_id))
        store.free(ids[7])
        store.sync()
        return store, baseline_ops

    def test_crash_at_every_fault_point_reopens_consistent(self, tmp_path):
        # Dry run to count the mutating file ops of the full workload.
        probe_plan = FaultPlan()
        store, baseline_ops = self.workload(tmp_path / "probe.db",
                                            probe_plan)
        total_ops = store.plan.mutation_ops
        store.close()
        assert baseline_ops is not None and total_ops > baseline_ops

        for crash_at in range(baseline_ops + 1, total_ops + 1):
            path = tmp_path / f"crash-{crash_at}.db"
            plan = FaultPlan(seed=crash_at, crash_after_ops=crash_at)
            with pytest.raises(SimulatedCrash):
                self.workload(path, plan)
            # "Restart the process": reopen with a plain store.  The
            # second sync either committed fully or not at all.
            reopened = FilePageStore(path)
            live = reopened.page_ids()
            if 7 in live:  # pre-crash generation
                assert live == set(range(8))
                expected_version = "v1"
            else:  # post-crash generation
                assert live == set(range(7))
                expected_version = "v2"
            for page_id in sorted(live):
                version, payload = reopened.read(page_id)
                assert payload == page_id
                if page_id < 4:
                    assert version == expected_version
                else:
                    assert version == "v1"
            assert reopened.scan().ok
            reopened.close()

    def test_torn_header_write_falls_back_to_other_slot(self, tmp_path):
        path = tmp_path / "pages.db"
        store, _ = self.workload(path)
        store.close()
        # Manually tear the most recent header slot: zero half of it.
        from repro.index.storage import _SLOT, _SUPER
        store = FilePageStore(path, readonly=True)
        generation = store._generation
        store.close()
        slot_offset = _SUPER.size + (generation % 2) * _SLOT.size
        with open(path, "r+b") as stream:
            stream.seek(slot_offset)
            stream.write(b"\0" * (_SLOT.size // 2))
        reopened = FilePageStore(path)
        assert reopened._generation == generation - 1
        reopened.close()

    def test_both_header_slots_corrupt_is_structured_error(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        from repro.index.storage import _SLOT, _SUPER
        with open(path, "r+b") as stream:
            stream.seek(_SUPER.size)
            stream.write(b"\xff" * (2 * _SLOT.size))
        with pytest.raises(PageCorruptionError):
            FilePageStore(path)


class TestStructuredLoadErrors:
    def test_old_v1_format_rejected_clearly(self, tmp_path):
        path = tmp_path / "pages.db"
        header = struct.Struct("<8sQQ")
        path.write_bytes(header.pack(b"WALRUSPG", 0, 0))
        with pytest.raises(StorageError) as excinfo:
            FilePageStore(path)
        assert "old-format" in str(excinfo.value)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "pages.db"
        from repro.index.storage import _SUPER
        path.write_bytes(_SUPER.pack(b"WALRUSP2", 99) + b"\0" * 128)
        with pytest.raises(StorageError) as excinfo:
            FilePageStore(path)
        assert "version 99" in str(excinfo.value)

    def test_truncated_table_is_storage_error(self, tmp_path):
        path = tmp_path / "pages.db"
        store = populated(path)
        table_offset = store._offsets[0][0]  # truncate before any record
        store.close()
        with open(path, "r+b") as stream:
            stream.truncate(table_offset + 4)
        with pytest.raises(StorageError) as excinfo:
            FilePageStore(path)
        assert not str(excinfo.value).startswith("invalid load key")

    def test_garbage_table_payload_is_storage_error(self, tmp_path):
        # A table record whose checksum passes but whose payload is not
        # a pickled dict must still come back as StorageError.
        import pickle

        from repro.index.storage import (_RECORD, _SLOT, _SUPER,
                                         _TABLE_ID, _record_crc)
        path = tmp_path / "pages.db"
        populated(path).close()
        store = FilePageStore(path, readonly=True)
        generation = store._generation
        store.close()
        # Forge a newer commit whose table is a pickled list.
        payload = pickle.dumps([1, 2, 3])
        forged_generation = generation + 1
        slot_offset = _SUPER.size + (forged_generation % 2) * _SLOT.size
        with open(path, "r+b") as stream:
            stream.seek(0, 2)
            table_offset = stream.tell()
            stream.write(_RECORD.pack(_TABLE_ID, len(payload),
                                      _record_crc(_TABLE_ID, payload))
                         + payload)
            stream.seek(slot_offset)
            stream.write(FilePageStore._pack_slot(
                forged_generation, table_offset,
                _RECORD.size + len(payload), 0, 0, 5))
        with pytest.raises(StorageError) as excinfo:
            FilePageStore(path)
        assert "page table" in str(excinfo.value)


class TestClosedStore:
    def test_use_after_close_is_structured(self, tmp_path):
        store = populated(tmp_path / "pages.db")
        store.close()
        for operation in (lambda: store.read(0),
                          lambda: store.write(0, "x"),
                          lambda: store.allocate(),
                          lambda: store.free(0),
                          lambda: store.sync(),
                          lambda: store.scan(),
                          lambda: store.compact()):
            with pytest.raises(StorageError, match="closed"):
                operation()

    def test_double_close(self, tmp_path):
        store = populated(tmp_path / "pages.db")
        store.close()
        store.close()  # no error


class TestReadonly:
    def test_readonly_store_rejects_mutation(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        store = FilePageStore(path, readonly=True)
        assert store.read(0)["page"] == 0
        for operation in (lambda: store.write(0, "x"),
                          lambda: store.allocate(),
                          lambda: store.free(0),
                          lambda: store.sync(),
                          lambda: store.compact()):
            with pytest.raises(StorageError, match="readonly"):
                operation()
        store.close()

    def test_readonly_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            FilePageStore(tmp_path / "absent.db", readonly=True)

    def test_readonly_close_does_not_write(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        before = path.read_bytes()
        store = FilePageStore(path, readonly=True)
        store.read(1)
        store.close()
        assert path.read_bytes() == before


class TestCompactCrashSafety:
    def test_compact_under_crash_leaves_original(self, tmp_path):
        path = tmp_path / "pages.db"
        store = populated(path, pages=6, buffer_pages=2)
        for _ in range(10):  # accumulate dead versions
            store.write(0, {"page": 0, "blob": "y" * 512})
            store.sync()
        store.close()

        # Find how many mutating ops a full compact takes.
        probe = FaultInjectingPageStore(path, plan=FaultPlan())
        start_ops = probe.plan.mutation_ops
        probe.compact()
        total = probe.plan.mutation_ops
        probe.close()

        # Crash mid-compact: the original file must stay usable.  The
        # side-file phase uses a plain store, so only the post-replace
        # reopen runs through the plan — crash the first op after it.
        victim_path = tmp_path / "victim.db"
        original = populated(victim_path, pages=6, buffer_pages=2)
        original.close()
        plan = FaultPlan(crash_after_ops=start_ops + 1, torn_writes=False)
        victim = FaultInjectingPageStore(victim_path, plan=plan)
        try:
            victim.compact()
        except SimulatedCrash:
            pass
        reopened = FilePageStore(victim_path)
        assert reopened.page_ids() == set(range(6))
        assert reopened.scan().ok
        reopened.close()
        assert total > start_ops


class TestTreeVerify:
    def build_tree(self, store=None):
        import numpy as np

        from repro.index.geometry import Rect
        from repro.index.rstar import RStarTree
        tree = RStarTree(2, store=store, max_entries=4)
        rng = __import__("random").Random(3)
        for index in range(40):
            low = np.array([rng.random(), rng.random()])
            tree.insert(Rect(low, low + 0.05), index)
        return tree

    def test_healthy_tree_has_no_issues(self):
        assert self.build_tree().verify() == []

    def test_orphan_page_reported(self):
        tree = self.build_tree()
        extra = tree.store.allocate()
        tree.store.write(extra, "not part of the tree")
        issues = tree.verify()
        assert any("orphan" in issue for issue in issues)

    def test_dangling_child_reported(self):
        tree = self.build_tree()
        victim = next(iter(tree.store.page_ids() - {tree.root_id}))
        tree.store.free(victim)
        issues = tree.verify()
        assert any(f"node {victim} is unreadable" in issue
                   for issue in issues)
        assert any("dangling" in issue for issue in issues)

    def test_corrupt_page_reported_not_raised(self, tmp_path):
        store = FilePageStore(tmp_path / "tree.db", buffer_pages=1)
        tree = self.build_tree(store)
        store.sync()
        victim = next(iter(store.page_ids() - {tree.root_id}))
        store._buffer.clear()  # force the next read from disk
        corrupt_page(tmp_path / "tree.db", victim)
        issues = tree.verify()
        assert any("checksum" in issue for issue in issues)
        store.close()
