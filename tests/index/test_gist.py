"""Tests for the GiST framework and its R-tree/B-tree key classes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SpatialIndexError
from repro.index.geometry import Rect
from repro.index.gist import BTreeKey, GiST, RTreeKey
from repro.index.rstar import RStarTree
from repro.index.storage import FilePageStore


def rtree_gist(points: np.ndarray, max_entries: int = 8) -> GiST:
    tree = GiST(RTreeKey(), max_entries=max_entries)
    for index, point in enumerate(points):
        tree.insert(Rect.from_point(point), index)
    return tree


class TestGistCore:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(SpatialIndexError):
            GiST(RTreeKey(), max_entries=2)

    def test_empty_search(self):
        tree = GiST(RTreeKey())
        assert tree.search(Rect(np.zeros(2), np.ones(2))) == []

    def test_size_and_items(self, rng):
        points = rng.uniform(size=(100, 3))
        tree = rtree_gist(points)
        assert len(tree) == 100
        assert sorted(item for _, item in tree.items()) == list(range(100))

    def test_invariants(self, rng):
        tree = rtree_gist(rng.uniform(size=(500, 2)), max_entries=6)
        tree.check_invariants()
        assert tree.height() >= 3


class TestRTreeKey:
    def test_search_matches_brute_force(self, rng):
        points = rng.uniform(size=(400, 3))
        tree = rtree_gist(points)
        probe = Rect(np.full(3, 0.3), np.full(3, 0.6))
        hits = sorted(tree.search(probe))
        brute = sorted(i for i, p in enumerate(points)
                       if probe.contains_point(p))
        assert hits == brute

    def test_agrees_with_rstar(self, rng):
        """The GiST R-tree and the R*-tree return identical result sets
        (different structure, same semantics)."""
        points = rng.uniform(size=(300, 4))
        gist = rtree_gist(points)
        rstar = RStarTree(4, max_entries=8)
        for index, point in enumerate(points):
            rstar.insert_point(point, index)
        for _ in range(5):
            center = rng.uniform(0.2, 0.8, size=4)
            probe = Rect(center - 0.15, center + 0.15)
            assert sorted(gist.search(probe)) == sorted(rstar.search(probe))

    def test_delete(self, rng):
        points = rng.uniform(size=(120, 2))
        tree = rtree_gist(points)
        for index in range(0, 120, 3):
            assert tree.delete(Rect.from_point(points[index]), index) == 1
        assert len(tree) == 80
        probe = Rect(np.zeros(2), np.ones(2))
        assert sorted(tree.search(probe)) == [i for i in range(120)
                                              if i % 3 != 0]

    def test_delete_missing_returns_zero(self, rng):
        tree = rtree_gist(rng.uniform(size=(10, 2)))
        assert tree.delete(Rect.from_point(np.array([2.0, 2.0])), 99) == 0

    @given(seed=st.integers(0, 5000), max_entries=st.sampled_from([4, 8, 16]))
    @settings(max_examples=20, deadline=None)
    def test_search_property(self, seed, max_entries):
        rng = np.random.default_rng(seed)
        points = rng.uniform(size=(150, 2))
        tree = rtree_gist(points, max_entries=max_entries)
        tree.check_invariants()
        center = rng.uniform(size=2)
        probe = Rect(center - 0.2, center + 0.2)
        hits = sorted(tree.search(probe))
        brute = sorted(i for i, p in enumerate(points)
                       if probe.contains_point(p))
        assert hits == brute


class TestBTreeKey:
    def build(self, values) -> GiST:
        tree = GiST(BTreeKey(), max_entries=8)
        for index, value in enumerate(values):
            tree.insert(BTreeKey.key(value), index)
        return tree

    def test_range_query(self, rng):
        values = rng.uniform(0, 100, size=300)
        tree = self.build(values)
        tree.check_invariants()
        hits = sorted(tree.search(BTreeKey.range(25.0, 75.0)))
        brute = sorted(i for i, v in enumerate(values) if 25.0 <= v <= 75.0)
        assert hits == brute

    def test_point_query(self):
        tree = self.build([1, 5, 5, 9])
        hits = sorted(tree.search(BTreeKey.key(5)))
        assert hits == [1, 2]

    def test_integer_keys(self):
        tree = self.build(range(1000))
        hits = sorted(tree.search(BTreeKey.range(100, 110)))
        assert hits == list(range(100, 111))

    def test_rejects_inverted_range(self):
        with pytest.raises(SpatialIndexError):
            BTreeKey.range(5, 1)

    def test_delete(self):
        tree = self.build([3, 1, 4, 1, 5])
        assert tree.delete(BTreeKey.key(1), 1) == 1
        assert sorted(tree.search(BTreeKey.key(1))) == [3]

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_range_property(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 50, size=200)
        tree = self.build(values)
        low, high = sorted(rng.integers(0, 50, size=2))
        hits = sorted(tree.search(BTreeKey.range(int(low), int(high))))
        brute = sorted(i for i, v in enumerate(values) if low <= v <= high)
        assert hits == brute


class TestGistStorage:
    def test_file_backed(self, rng, tmp_path):
        points = rng.uniform(size=(200, 2))
        with FilePageStore(tmp_path / "gist.pages", buffer_pages=8) as store:
            tree = GiST(RTreeKey(), store=store, max_entries=8)
            for index, point in enumerate(points):
                tree.insert(Rect.from_point(point), index)
            tree.check_invariants()
            probe = Rect(np.array([0.25, 0.25]), np.array([0.75, 0.75]))
            hits = sorted(tree.search(probe))
            brute = sorted(i for i, p in enumerate(points)
                           if probe.contains_point(p))
            assert hits == brute
