"""Tests for the R*-tree, including brute-force equivalence properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SpatialIndexError
from repro.index.geometry import Rect
from repro.index.rstar import RStarTree
from repro.index.storage import FilePageStore


def build_point_tree(points: np.ndarray, **kwargs) -> RStarTree:
    tree = RStarTree(points.shape[1], **kwargs)
    for index, point in enumerate(points):
        tree.insert_point(point, index)
    return tree


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(SpatialIndexError):
            RStarTree(0)

    def test_rejects_small_capacity(self):
        with pytest.raises(SpatialIndexError):
            RStarTree(2, max_entries=3)

    def test_rejects_bad_min_fill(self):
        with pytest.raises(SpatialIndexError):
            RStarTree(2, min_fill=0.9)

    def test_rejects_dimension_mismatch_on_insert(self):
        tree = RStarTree(3)
        with pytest.raises(SpatialIndexError):
            tree.insert_point(np.zeros(2), "x")

    def test_rejects_dimension_mismatch_on_search(self):
        tree = RStarTree(3)
        with pytest.raises(SpatialIndexError):
            tree.search_within(np.zeros(2), 0.1)


class TestStructure:
    def test_invariants_after_bulk_insert(self, rng):
        tree = build_point_tree(rng.uniform(size=(800, 3)), max_entries=8)
        tree.check_invariants()
        assert len(tree) == 800

    def test_height_grows_logarithmically(self, rng):
        tree = build_point_tree(rng.uniform(size=(1000, 2)), max_entries=8)
        assert 2 <= tree.height() <= 6

    def test_items_enumerates_everything(self, rng):
        points = rng.uniform(size=(100, 2))
        tree = build_point_tree(points)
        items = sorted(item for _, item in tree.items())
        assert items == list(range(100))

    def test_duplicate_points_supported(self):
        tree = RStarTree(2, max_entries=4)
        for index in range(20):
            tree.insert_point(np.array([0.5, 0.5]), index)
        tree.check_invariants()
        hits = tree.search_within(np.array([0.5, 0.5]), 0.0)
        assert len(hits) == 20

    def test_no_reinsert_variant(self, rng):
        tree = build_point_tree(rng.uniform(size=(300, 2)),
                                max_entries=8, reinsert_fraction=0.0)
        tree.check_invariants()


class TestRangeSearch:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(size=(500, 4))
        tree = build_point_tree(points, max_entries=16)
        query = points[7]
        for epsilon in (0.0, 0.05, 0.2, 0.5):
            hits = sorted(item for _, item in
                          tree.search_within(query, epsilon))
            brute = sorted(
                index for index in range(len(points))
                if np.linalg.norm(points[index] - query) <= epsilon
            )
            assert hits == brute

    def test_distances_sorted_and_correct(self, rng):
        points = rng.uniform(size=(200, 3))
        tree = build_point_tree(points)
        hits = tree.search_within(points[0], 0.3)
        distances = [d for d, _ in hits]
        assert distances == sorted(distances)
        for distance, item in hits:
            assert distance == pytest.approx(
                np.linalg.norm(points[item] - points[0]))

    def test_linf_metric(self, rng):
        points = rng.uniform(size=(300, 2))
        tree = build_point_tree(points)
        query = np.array([0.5, 0.5])
        hits = sorted(item for _, item in
                      tree.search_within(query, 0.1, metric="linf"))
        brute = sorted(
            index for index in range(len(points))
            if np.abs(points[index] - query).max() <= 0.1
        )
        assert hits == brute

    def test_rectangle_intersection(self, rng):
        lows = rng.uniform(0, 0.8, size=(200, 2))
        highs = lows + rng.uniform(0.01, 0.2, size=(200, 2))
        tree = RStarTree(2, max_entries=8)
        rects = [Rect(lo, hi) for lo, hi in zip(lows, highs)]
        for index, r in enumerate(rects):
            tree.insert(r, index)
        probe = Rect(np.array([0.4, 0.4]), np.array([0.6, 0.6]))
        hits = sorted(tree.search(probe))
        brute = sorted(index for index, r in enumerate(rects)
                       if r.intersects(probe))
        assert hits == brute

    def test_rejects_negative_epsilon(self, rng):
        tree = build_point_tree(rng.uniform(size=(10, 2)))
        with pytest.raises(SpatialIndexError):
            tree.search_within(np.zeros(2), -0.1)

    @given(seed=st.integers(0, 10_000), epsilon=st.floats(0.0, 0.6),
           max_entries=st.sampled_from([4, 8, 16]))
    @settings(max_examples=25, deadline=None)
    def test_range_equals_brute_force_property(self, seed, epsilon,
                                               max_entries):
        points = np.random.default_rng(seed).uniform(size=(120, 3))
        tree = build_point_tree(points, max_entries=max_entries)
        query = points[seed % len(points)]
        hits = sorted(item for _, item in tree.search_within(query, epsilon))
        brute = sorted(index for index in range(len(points))
                       if np.linalg.norm(points[index] - query) <= epsilon)
        assert hits == brute


class TestNearest:
    def test_matches_brute_force(self, rng):
        points = rng.uniform(size=(400, 3))
        tree = build_point_tree(points)
        query = np.array([0.5, 0.5, 0.5])
        for k in (1, 5, 20):
            knn = [item for _, item in tree.nearest(query, k)]
            brute = list(np.argsort(
                np.linalg.norm(points - query, axis=1))[:k])
            assert knn == [int(i) for i in brute]

    def test_k_larger_than_size(self, rng):
        tree = build_point_tree(rng.uniform(size=(5, 2)))
        assert len(tree.nearest(np.zeros(2), k=50)) == 5

    def test_rejects_bad_k(self, rng):
        tree = build_point_tree(rng.uniform(size=(5, 2)))
        with pytest.raises(SpatialIndexError):
            tree.nearest(np.zeros(2), k=0)


class TestDelete:
    def test_delete_then_search(self, rng):
        points = rng.uniform(size=(300, 3))
        tree = build_point_tree(points, max_entries=8)
        for index in range(0, 300, 3):
            removed = tree.delete(Rect.from_point(points[index]),
                                  lambda item, i=index: item == i)
            assert removed == 1
        tree.check_invariants()
        assert len(tree) == 200
        survivors = sorted(item for _, item in tree.items())
        assert survivors == [i for i in range(300) if i % 3 != 0]

    def test_delete_everything(self, rng):
        points = rng.uniform(size=(64, 2))
        tree = build_point_tree(points, max_entries=4)
        for index in range(64):
            assert tree.delete(Rect.from_point(points[index]),
                               lambda item, i=index: item == i) == 1
        assert len(tree) == 0

    def test_delete_missing_is_zero(self, rng):
        tree = build_point_tree(rng.uniform(size=(10, 2)))
        removed = tree.delete(Rect.from_point(np.array([5.0, 5.0])),
                              lambda item: True)
        assert removed == 0

    def test_queries_correct_after_deletes(self, rng):
        points = rng.uniform(size=(200, 2))
        tree = build_point_tree(points, max_entries=8)
        alive = set(range(200))
        for index in rng.permutation(200)[:120]:
            tree.delete(Rect.from_point(points[index]),
                        lambda item, i=int(index): item == i)
            alive.discard(int(index))
        query = np.array([0.5, 0.5])
        hits = sorted(item for _, item in tree.search_within(query, 0.25))
        brute = sorted(i for i in alive
                       if np.linalg.norm(points[i] - query) <= 0.25)
        assert hits == brute


class TestFileBacked:
    def test_tree_over_file_store(self, rng, tmp_path):
        points = rng.uniform(size=(300, 3))
        with FilePageStore(tmp_path / "tree.db", buffer_pages=8) as store:
            tree = RStarTree(3, store=store, max_entries=8)
            for index, point in enumerate(points):
                tree.insert_point(point, index)
            tree.check_invariants()
            hits = sorted(item for _, item in
                          tree.search_within(points[0], 0.2))
            brute = sorted(i for i in range(300)
                           if np.linalg.norm(points[i] - points[0]) <= 0.2)
            assert hits == brute

    def test_reopen_via_state(self, rng, tmp_path):
        points = rng.uniform(size=(150, 2))
        path = tmp_path / "tree.db"
        store = FilePageStore(path, buffer_pages=8)
        tree = RStarTree(2, store=store, max_entries=8)
        for index, point in enumerate(points):
            tree.insert_point(point, index)
        state = tree.state()
        expected = sorted(item for _, item in
                          tree.search_within(points[3], 0.3))
        store.close()

        with FilePageStore(path) as reopened_store:
            reopened = RStarTree.from_state(state, reopened_store)
            hits = sorted(item for _, item in
                          reopened.search_within(points[3], 0.3))
            assert hits == expected
            reopened.check_invariants()
