"""Tests for the paged storage layer."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.index.storage import FilePageStore, MemoryPageStore


class TestMemoryPageStore:
    def test_allocate_write_read(self):
        store = MemoryPageStore()
        page_id = store.allocate()
        store.write(page_id, {"hello": [1, 2, 3]})
        assert store.read(page_id) == {"hello": [1, 2, 3]}

    def test_read_missing(self):
        with pytest.raises(StorageError):
            MemoryPageStore().read(0)

    def test_write_unallocated(self):
        with pytest.raises(StorageError):
            MemoryPageStore().write(5, "x")

    def test_free(self):
        store = MemoryPageStore()
        page_id = store.allocate()
        store.write(page_id, "x")
        store.free(page_id)
        with pytest.raises(StorageError):
            store.read(page_id)

    def test_free_missing(self):
        with pytest.raises(StorageError):
            MemoryPageStore().free(3)

    def test_len_counts_live_pages(self):
        store = MemoryPageStore()
        ids = [store.allocate() for _ in range(3)]
        for page_id in ids:
            store.write(page_id, page_id)
        store.free(ids[1])
        assert len(store) == 2


class TestFilePageStore:
    def test_write_read(self, tmp_path):
        with FilePageStore(tmp_path / "pages.db") as store:
            page_id = store.allocate()
            store.write(page_id, ["a", 1, (2, 3)])
            assert store.read(page_id) == ["a", 1, (2, 3)]

    def test_eviction_spills_and_reloads(self, tmp_path):
        with FilePageStore(tmp_path / "pages.db", buffer_pages=2) as store:
            ids = [store.allocate() for _ in range(10)]
            for page_id in ids:
                store.write(page_id, f"page-{page_id}")
            # Everything readable despite a 2-page pool.
            for page_id in ids:
                assert store.read(page_id) == f"page-{page_id}"

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "pages.db"
        store = FilePageStore(path, buffer_pages=4)
        ids = [store.allocate() for _ in range(5)]
        for page_id in ids:
            store.write(page_id, page_id * 7)
        store.close()

        reopened = FilePageStore(path)
        for page_id in ids:
            assert reopened.read(page_id) == page_id * 7
        # Fresh allocations never collide with existing pages.
        assert reopened.allocate() == 5
        reopened.close()

    def test_overwrite_returns_latest(self, tmp_path):
        with FilePageStore(tmp_path / "pages.db", buffer_pages=1) as store:
            a = store.allocate()
            b = store.allocate()
            store.write(a, "v1")
            store.write(b, "other")  # evicts a
            store.write(a, "v2")
            store.write(b, "other2")  # evicts a again
            assert store.read(a) == "v2"

    def test_free_then_read_fails(self, tmp_path):
        with FilePageStore(tmp_path / "pages.db") as store:
            page_id = store.allocate()
            store.write(page_id, "x")
            store.sync()
            store.free(page_id)
            with pytest.raises(StorageError):
                store.read(page_id)

    def test_rejects_non_store_file(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"this is not a page file" * 10)
        with pytest.raises(StorageError):
            FilePageStore(path)

    def test_rejects_zero_buffer(self, tmp_path):
        with pytest.raises(StorageError):
            FilePageStore(tmp_path / "pages.db", buffer_pages=0)

    def test_compact_reclaims_space(self, tmp_path):
        path = tmp_path / "pages.db"
        store = FilePageStore(path, buffer_pages=1)
        page_id = store.allocate()
        for version in range(50):
            store.write(page_id, "x" * 1000 + str(version))
            store.sync()
        before = path.stat().st_size
        store.compact()
        after = path.stat().st_size
        assert after < before
        assert store.read(page_id).endswith("49")
        store.close()

    def test_close_is_idempotent(self, tmp_path):
        store = FilePageStore(tmp_path / "pages.db")
        store.close()
        store.close()
