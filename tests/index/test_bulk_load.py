"""Tests for STR bulk loading of the R*-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SpatialIndexError
from repro.index.geometry import Rect
from repro.index.rstar import RStarTree


def point_items(points: np.ndarray) -> list[tuple[Rect, int]]:
    return [(Rect.from_point(point), index)
            for index, point in enumerate(points)]


class TestBulkLoad:
    def test_empty(self):
        tree = RStarTree.bulk_load(3, [])
        assert len(tree) == 0
        assert tree.search_within(np.zeros(3), 1.0) == []

    def test_single_item(self):
        tree = RStarTree.bulk_load(2, point_items(np.array([[0.5, 0.5]])))
        assert len(tree) == 1
        tree.check_invariants()

    @pytest.mark.parametrize("count", [10, 33, 200, 2000])
    def test_invariants_across_sizes(self, rng, count):
        tree = RStarTree.bulk_load(4, point_items(
            rng.uniform(size=(count, 4))), max_entries=16)
        tree.check_invariants()
        assert len(tree) == count

    def test_search_matches_brute_force(self, rng):
        points = rng.uniform(size=(800, 5))
        tree = RStarTree.bulk_load(5, point_items(points), max_entries=16)
        query = points[13]
        hits = sorted(item for _, item in tree.search_within(query, 0.3))
        brute = sorted(index for index in range(len(points))
                       if np.linalg.norm(points[index] - query) <= 0.3)
        assert hits == brute

    def test_same_results_as_incremental(self, rng):
        points = rng.uniform(size=(300, 3))
        bulk = RStarTree.bulk_load(3, point_items(points), max_entries=8)
        incremental = RStarTree(3, max_entries=8)
        for index, point in enumerate(points):
            incremental.insert_point(point, index)
        query = points[0]
        for epsilon in (0.1, 0.25):
            assert sorted(i for _, i in bulk.search_within(query, epsilon)) \
                == sorted(i for _, i in
                          incremental.search_within(query, epsilon))

    def test_bulk_tree_is_shallower_or_equal(self, rng):
        points = rng.uniform(size=(1500, 3))
        bulk = RStarTree.bulk_load(3, point_items(points), max_entries=16)
        incremental = RStarTree(3, max_entries=16)
        for index, point in enumerate(points):
            incremental.insert_point(point, index)
        assert bulk.height() <= incremental.height()

    def test_insert_after_bulk_load(self, rng):
        points = rng.uniform(size=(200, 3))
        tree = RStarTree.bulk_load(3, point_items(points), max_entries=8)
        tree.insert_point(np.array([0.5, 0.5, 0.5]), "late")
        tree.check_invariants()
        assert len(tree) == 201

    def test_delete_after_bulk_load(self, rng):
        points = rng.uniform(size=(200, 3))
        tree = RStarTree.bulk_load(3, point_items(points), max_entries=8)
        for index in range(0, 200, 4):
            assert tree.delete(Rect.from_point(points[index]),
                               lambda item, i=index: item == i) == 1
        tree.check_invariants()
        assert len(tree) == 150

    def test_rejects_bad_fill_ratio(self, rng):
        with pytest.raises(SpatialIndexError):
            RStarTree.bulk_load(2, point_items(rng.uniform(size=(5, 2))),
                                fill_ratio=0.0)

    def test_rectangles_not_just_points(self, rng):
        lows = rng.uniform(0, 0.8, size=(150, 2))
        highs = lows + rng.uniform(0.01, 0.2, size=(150, 2))
        items = [(Rect(lo, hi), index)
                 for index, (lo, hi) in enumerate(zip(lows, highs))]
        tree = RStarTree.bulk_load(2, items, max_entries=8)
        tree.check_invariants()
        probe = Rect(np.array([0.4, 0.4]), np.array([0.6, 0.6]))
        hits = sorted(tree.search(probe))
        brute = sorted(index for index, (rect, _) in enumerate(items)
                       if rect.intersects(probe))
        assert hits == brute

    @given(count=st.integers(1, 300), seed=st.integers(0, 1000),
           max_entries=st.sampled_from([4, 8, 32]))
    @settings(max_examples=25, deadline=None)
    def test_bulk_load_property(self, count, seed, max_entries):
        """Invariants + size hold for arbitrary sizes/capacities."""
        points = np.random.default_rng(seed).uniform(size=(count, 3))
        tree = RStarTree.bulk_load(3, point_items(points),
                                   max_entries=max_entries)
        tree.check_invariants()
        assert len(tree) == count
        assert sorted(i for _, i in tree.items()) == list(range(count))
