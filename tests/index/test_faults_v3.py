"""Crash-consistency and read-fault sweeps over the v3 mmap store.

The v2 suite (``test_faults.py``) proves the commit protocol; this one
proves the v3 store inherits it unchanged — same dual-header flip,
same CRC detection — while its reads run zero-copy through ``mmap``
with the read-fault schedule applied at the mapping hook.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PageCorruptionError, StorageError
from repro.index.faults import (
    FaultInjectingMmapPageStore,
    FaultInjectingPageStore,
    FaultPlan,
    SimulatedCrash,
    fault_injecting_store,
)
from repro.index.geometry import Rect
from repro.index.node import Entry, Node
from repro.index.storage import FilePageStore
from repro.index.storage_v3 import MmapPageStore

pytestmark = pytest.mark.faults


def versioned_node(page_id, version):
    """A one-entry leaf whose item encodes ``(version, page_id)``."""
    node = Node(page_id, 0)
    low = np.full(3, float(page_id))
    node.entries.append(Entry(Rect(low, low + 1.0),
                              item=(version, page_id)))
    return node


def populated(path, pages=5, plan=None, buffer_pages=256):
    if plan is None:
        store = MmapPageStore(path, buffer_pages=buffer_pages)
    else:
        store = FaultInjectingMmapPageStore(path, buffer_pages,
                                            plan=plan)
    for _ in range(pages):
        page_id = store.allocate()
        store.write(page_id, versioned_node(page_id, 1))
    store.sync()
    return store


class TestCrashDuringSync:
    def workload(self, path, plan=None):
        """Commit a baseline of 8 nodes, mutate 4 + free 1, re-sync."""
        store = populated(path, pages=8, plan=plan, buffer_pages=4)
        baseline_ops = store.plan.mutation_ops if plan is not None else None
        for page_id in range(4):
            store.write(page_id, versioned_node(page_id, 2))
        store.free(7)
        store.sync()
        return store, baseline_ops

    def test_crash_at_every_fault_point_reopens_consistent(self, tmp_path):
        probe_plan = FaultPlan()
        store, baseline_ops = self.workload(tmp_path / "probe.db",
                                            probe_plan)
        total_ops = store.plan.mutation_ops
        store.close()
        assert baseline_ops is not None and total_ops > baseline_ops

        for crash_at in range(baseline_ops + 1, total_ops + 1):
            path = tmp_path / f"crash-{crash_at}.db"
            plan = FaultPlan(seed=crash_at, crash_after_ops=crash_at)
            with pytest.raises(SimulatedCrash):
                self.workload(path, plan)
            # "Restart the process": a plain v3 store must reopen to
            # exactly the first or exactly the second commit.
            reopened = MmapPageStore(path)
            live = reopened.page_ids()
            if 7 in live:  # pre-crash generation
                assert live == set(range(8))
                expected_version = 1
            else:  # post-crash generation
                assert live == set(range(7))
                expected_version = 2
            for page_id in sorted(live):
                version, payload = reopened.read(page_id).entries[0].item
                assert payload == page_id
                assert version == (expected_version if page_id < 4 else 1)
            assert reopened.scan().ok
            reopened.close()


class TestMappedReadFaults:
    def test_in_flight_bitflips_are_caught(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path, pages=20).close()
        plan = FaultPlan(seed=7)
        store = FaultInjectingMmapPageStore(path, 1, plan=plan)
        plan.bitflip_rate = 1.0
        with pytest.raises(StorageError):
            for page_id in range(20):
                store.read(page_id)

    def test_scheduled_read_error_is_retried(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        plan = FaultPlan(read_error_schedule=(1,))
        store = FaultInjectingMmapPageStore(path, plan=plan)
        node = store.read(0)
        assert node.entries[0].item == (1, 0)
        store.close()

    def test_persistent_read_errors_become_storage_error(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        plan = FaultPlan(read_error_schedule=tuple(range(1, 50)))
        with pytest.raises(StorageError) as excinfo:
            FaultInjectingMmapPageStore(path, plan=plan)
        assert "after" in str(excinfo.value)
        assert not isinstance(excinfo.value, PageCorruptionError)

    def test_reads_after_crash_raise_simulated_crash(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        plan = FaultPlan()
        store = FaultInjectingMmapPageStore(path, 1, plan=plan)
        plan.crashed = True  # the process "died" elsewhere
        with pytest.raises(SimulatedCrash):
            store.read(0)


class TestSniffingFactory:
    def test_mounts_matching_store_per_format(self, tmp_path):
        v3 = tmp_path / "v3.db"
        populated(v3, pages=1).close()
        v2 = tmp_path / "v2.db"
        with FilePageStore(v2) as store:
            store.write(store.allocate(), "pickled payload")
        mounted_v3 = fault_injecting_store(v3, readonly=True)
        mounted_v2 = fault_injecting_store(v2, readonly=True)
        try:
            assert type(mounted_v3) is FaultInjectingMmapPageStore
            assert type(mounted_v2) is FaultInjectingPageStore
            assert mounted_v3.read(0).entries[0].item == (1, 0)
            assert mounted_v2.read(0) == "pickled payload"
        finally:
            mounted_v3.close()
            mounted_v2.close()

    def test_shared_plan_counts_both_stores(self, tmp_path):
        v3 = tmp_path / "v3.db"
        populated(v3, pages=2).close()
        plan = FaultPlan()
        store = fault_injecting_store(v3, plan=plan, readonly=True)
        before = plan.read_ops
        store.read(0)
        store.read(1)
        assert plan.read_ops > before  # mapped reads hit the schedule
        store.close()
