"""The v3 mmap page store and the format-dispatching factories."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import PageCorruptionError, StorageError
from repro.index.faults import corrupt_page
from repro.index.geometry import Rect
from repro.index.node import Entry, Node
from repro.index.pagestore import (
    DEFAULT_PAGE_FORMAT,
    create_page_store,
    open_page_store,
    page_store_class,
    sniff_page_format,
)
from repro.index.storage import (
    _SUPER,
    _TABLE_STAMP,
    FilePageStore,
    committed_generation,
)
from repro.index.storage_v3 import MmapPageStore


def make_node(page_id, level=0, count=4, dims=4):
    node = Node(page_id, level)
    rng = np.random.default_rng(page_id + 1)
    for index in range(count):
        low = rng.random(dims)
        if level == 0:
            node.entries.append(Entry(Rect(low, low + 0.2),
                                      item=(page_id * 100 + index, index)))
        else:
            node.entries.append(Entry(Rect(low, low + 0.2),
                                      child_id=page_id * 100 + index))
    return node


def populated(path, pages=5, buffer_pages=256):
    store = MmapPageStore(path, buffer_pages=buffer_pages)
    for _ in range(pages):
        page_id = store.allocate()
        store.write(page_id, make_node(page_id))
    store.sync()
    return store


class TestMmapPageStore:
    def test_write_read_round_trip(self, tmp_path):
        with MmapPageStore(tmp_path / "pages.db") as store:
            page_id = store.allocate()
            node = make_node(page_id)
            store.write(page_id, node)
            assert store.read(page_id).entries == node.entries

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "pages.db"
        originals = {}
        store = populated(path)
        for page_id in sorted(store.page_ids()):
            originals[page_id] = store.read(page_id).entries
        store.close()
        with MmapPageStore(path, buffer_pages=1) as reopened:
            for page_id, entries in originals.items():
                assert reopened.read(page_id).entries == entries
            assert reopened.allocate() == len(originals)

    def test_cold_read_is_pickle_free(self, tmp_path, monkeypatch):
        path = tmp_path / "pages.db"
        populated(path).close()
        store = MmapPageStore(path, buffer_pages=1, readonly=True)

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("v3 read path called pickle.loads")

        monkeypatch.setattr(pickle, "loads", forbidden)
        for page_id in sorted(store.page_ids()):
            assert store.read(page_id).entries
        store.close()

    def test_reads_are_zero_copy_views(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        store = MmapPageStore(path, buffer_pages=1, readonly=True)
        node = store.read(0)
        lower = node.entries[0].rect.lower
        assert lower.base is not None  # aliases the mapping, no copy
        assert not lower.flags.writeable
        store.close()
        # The store keeps a still-referenced mapping alive past close:
        # the view must stay readable.
        assert float(lower[0]) == lower[0]

    def test_rejects_non_node_payload(self, tmp_path):
        store = MmapPageStore(tmp_path / "pages.db")
        page_id = store.allocate()
        store.write(page_id, {"arbitrary": "pickle"})  # buffered only
        with pytest.raises(StorageError, match="nodes only"):
            store.sync()  # the spill-time encode is what rejects it
        store.free(page_id)  # drop the unencodable page; close commits
        store.close()

    def test_corrupt_record_is_structured(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        corrupt_page(path, 2)
        with MmapPageStore(path) as store:
            with pytest.raises(PageCorruptionError) as excinfo:
                store.read(2)
            assert excinfo.value.page_id == 2
            for page_id in (0, 1, 3, 4):
                assert store.read(page_id).page_id == page_id

    def test_scan_reports_corruption(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        corrupt_page(path, 1)
        with MmapPageStore(path, readonly=True) as store:
            report = store.scan()
        assert not report.ok
        assert [info.page_id for info in report.pages
                if not info.ok] == [1]

    def test_free_compact_generation(self, tmp_path):
        path = tmp_path / "pages.db"
        store = populated(path, pages=6, buffer_pages=2)
        for _ in range(10):  # pile up dead versions
            store.write(0, make_node(0, count=6))
            store.sync()
        store.free(5)
        store.sync()
        generation = store.generation
        before = path.stat().st_size
        store.compact()
        assert path.stat().st_size < before
        assert store.generation >= generation  # monotonic across the swap
        assert store.page_ids() == set(range(5))
        assert store.read(0).entries == make_node(0, count=6).entries
        final = store.generation
        store.close()
        assert committed_generation(path) >= final

    def test_metadata_round_trip(self, tmp_path):
        path = tmp_path / "pages.db"
        store = MmapPageStore(path)
        store.set_metadata(b"catalog blob \x00\xff")
        store.sync()
        store.close()
        with MmapPageStore(path, readonly=True) as reopened:
            assert bytes(reopened.metadata) == b"catalog blob \x00\xff"

    def test_records_are_aligned(self, tmp_path):
        path = tmp_path / "pages.db"
        store = populated(path, pages=8)
        for page_id, (offset, _size) in store._offsets.items():
            assert offset % 8 == 0, f"page {page_id} at {offset}"
        store.close()


class TestCrossVersionOpens:
    def test_v2_class_refuses_v3_file(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path).close()
        with pytest.raises(StorageError, match="walrus migrate"):
            FilePageStore(path)

    def test_v3_class_refuses_v2_file(self, tmp_path):
        path = tmp_path / "pages.db"
        with FilePageStore(path) as store:
            store.write(store.allocate(), "any pickle")
        with pytest.raises(StorageError, match="walrus migrate"):
            MmapPageStore(path)

    def test_table_stamp_mismatch_is_structured(self, tmp_path):
        # Stitch a v3 superblock onto a file whose committed table is
        # stamped v2: the two disagree and the open must say so.
        path = tmp_path / "pages.db"
        with FilePageStore(path) as store:
            store.write(store.allocate(), "payload")
        with open(path, "r+b") as stream:
            stream.write(_SUPER.pack(MmapPageStore.MAGIC, 3))
        with pytest.raises(StorageError, match="written by format v2"):
            MmapPageStore(path)

    def test_legacy_unstamped_v2_table_still_opens(self, tmp_path):
        # A v2 file written before table stamping: strip the stamp off
        # the committed table in place; the v2 decoder must fall back.
        path = tmp_path / "pages.db"
        with FilePageStore(path) as store:
            store.write(store.allocate(), {"legacy": True})
        store = FilePageStore(path)
        table = dict(store._offsets)
        store.close()
        import os
        import zlib

        from repro.index.storage import (_RECORD, _SLOT, _SUPER as SUPER,
                                         _TABLE_ID, _record_crc)
        legacy = pickle.dumps(table, protocol=pickle.HIGHEST_PROTOCOL)
        with open(path, "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            offset = stream.tell()
            stream.write(_RECORD.pack(_TABLE_ID, len(legacy),
                                      _record_crc(_TABLE_ID, legacy)))
            stream.write(legacy)
            generation = committed_generation(path) + 1
            slot = FilePageStore._pack_slot(
                generation, offset, _RECORD.size + len(legacy), 0, 0, 1)
            stream.seek(SUPER.size + (generation % 2) * _SLOT.size)
            stream.write(slot)
        with FilePageStore(path) as reopened:
            assert reopened.read(0) == {"legacy": True}


class TestFactories:
    def test_sniff_both_formats(self, tmp_path):
        v2, v3 = tmp_path / "v2.db", tmp_path / "v3.db"
        with FilePageStore(v2) as store:
            store.write(store.allocate(), "x")
        populated(v3, pages=1).close()
        assert sniff_page_format(v2) == 2
        assert sniff_page_format(v3) == 3

    def test_sniff_rejects_junk_and_mismatch(self, tmp_path):
        junk = tmp_path / "junk.db"
        junk.write_bytes(b"gibberish" * 20)
        with pytest.raises(StorageError, match="not a WALRUS page file"):
            sniff_page_format(junk)
        lying = tmp_path / "lying.db"
        lying.write_bytes(_SUPER.pack(b"WALRUSP3", 2) + b"\0" * 112)
        with pytest.raises(StorageError, match="carries the v3 magic"):
            sniff_page_format(lying)

    def test_open_dispatches_on_magic(self, tmp_path):
        v2, v3 = tmp_path / "v2.db", tmp_path / "v3.db"
        with FilePageStore(v2) as store:
            store.write(store.allocate(), "x")
        populated(v3, pages=1).close()
        opened_v2 = open_page_store(v2, readonly=True)
        opened_v3 = open_page_store(v3, readonly=True)
        try:
            assert type(opened_v2) is FilePageStore
            assert type(opened_v3) is MmapPageStore
        finally:
            opened_v2.close()
            opened_v3.close()

    def test_create_defaults_to_v3(self, tmp_path):
        store = create_page_store(tmp_path / "new.db")
        try:
            assert store.FORMAT_VERSION == DEFAULT_PAGE_FORMAT == 3
        finally:
            store.close()
        assert sniff_page_format(tmp_path / "new.db") == 3

    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "pages.db"
        populated(path, pages=1).close()
        with pytest.raises(StorageError, match="already exists"):
            create_page_store(path)

    def test_unsupported_version_named(self):
        with pytest.raises(StorageError, match="supported: 2, 3"):
            page_store_class(9)
