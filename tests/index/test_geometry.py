"""Tests for n-dimensional rectangles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SpatialIndexError
from repro.index.geometry import Rect


def rect(lo, up) -> Rect:
    return Rect(np.asarray(lo, dtype=float), np.asarray(up, dtype=float))


class TestConstruction:
    def test_point_rect(self):
        r = Rect.from_point(np.array([1.0, 2.0]))
        assert r.area == 0.0
        assert r.contains_point(np.array([1.0, 2.0]))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(SpatialIndexError):
            rect([1, 1], [0, 2])

    def test_rejects_mismatched_bounds(self):
        with pytest.raises(SpatialIndexError):
            rect([0, 0], [1, 1, 1])

    def test_union_of_many(self):
        u = Rect.union_of([rect([0, 0], [1, 1]), rect([2, -1], [3, 0.5])])
        np.testing.assert_allclose(u.lower, [0, -1])
        np.testing.assert_allclose(u.upper, [3, 1])

    def test_union_of_empty(self):
        with pytest.raises(SpatialIndexError):
            Rect.union_of([])


class TestMeasures:
    def test_area(self):
        assert rect([0, 0, 0], [2, 3, 4]).area == pytest.approx(24.0)

    def test_margin(self):
        assert rect([0, 0], [2, 5]).margin == pytest.approx(7.0)

    def test_center(self):
        np.testing.assert_allclose(rect([0, 2], [4, 4]).center, [2, 3])

    def test_extents(self):
        np.testing.assert_allclose(rect([1, 1], [3, 6]).extents, [2, 5])


class TestRelations:
    def test_intersects_overlap(self):
        assert rect([0, 0], [2, 2]).intersects(rect([1, 1], [3, 3]))

    def test_intersects_touching(self):
        assert rect([0, 0], [1, 1]).intersects(rect([1, 1], [2, 2]))

    def test_disjoint(self):
        assert not rect([0, 0], [1, 1]).intersects(rect([2, 2], [3, 3]))

    def test_contains(self):
        assert rect([0, 0], [4, 4]).contains(rect([1, 1], [2, 2]))
        assert not rect([1, 1], [2, 2]).contains(rect([0, 0], [4, 4]))

    def test_intersection_area(self):
        assert rect([0, 0], [2, 2]).intersection_area(
            rect([1, 1], [3, 3])) == pytest.approx(1.0)
        assert rect([0, 0], [1, 1]).intersection_area(
            rect([5, 5], [6, 6])) == 0.0

    def test_union(self):
        u = rect([0, 0], [1, 1]).union(rect([2, 2], [3, 3]))
        np.testing.assert_allclose(u.lower, [0, 0])
        np.testing.assert_allclose(u.upper, [3, 3])

    def test_enlargement(self):
        base = rect([0, 0], [1, 1])
        assert base.enlargement(rect([0, 0], [1, 2])) == pytest.approx(1.0)
        assert base.enlargement(rect([0.2, 0.2], [0.8, 0.8])) == \
            pytest.approx(0.0)

    def test_expand(self):
        e = rect([1, 1], [2, 2]).expand(0.5)
        np.testing.assert_allclose(e.lower, [0.5, 0.5])
        np.testing.assert_allclose(e.upper, [2.5, 2.5])

    def test_expand_rejects_negative(self):
        with pytest.raises(SpatialIndexError):
            rect([0, 0], [1, 1]).expand(-0.1)

    def test_min_distance_inside_is_zero(self):
        assert rect([0, 0], [2, 2]).min_distance_to_point(
            np.array([1.0, 1.0])) == 0.0

    def test_min_distance_outside(self):
        assert rect([0, 0], [1, 1]).min_distance_to_point(
            np.array([4.0, 5.0])) == pytest.approx(5.0)

    def test_equality_and_hash(self):
        a = rect([0, 0], [1, 1])
        b = rect([0, 0], [1, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != rect([0, 0], [1, 2])
