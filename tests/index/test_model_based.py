"""Model-based property tests: random operation sequences vs. oracles.

The page store is checked against a plain dict; the R*-tree against a
brute-force list.  These catch state-machine bugs (stale buffers,
dangling pages, MBR rot) that single-operation unit tests miss.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.index.geometry import Rect
from repro.index.rstar import RStarTree
from repro.index.storage import FilePageStore, MemoryPageStore


class TestStorageModel:
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["write", "read", "free", "sync"]),
                      st.integers(0, 14), st.integers(0, 10_000)),
            min_size=1, max_size=60,
        ),
        buffer_pages=st.sampled_from([1, 2, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_file_store_matches_dict_model(self, operations,
                                           buffer_pages, tmp_path_factory):
        """Random op sequences on FilePageStore behave like a dict."""
        directory = tmp_path_factory.mktemp("store")
        store = FilePageStore(directory / "pages.db",
                              buffer_pages=buffer_pages)
        model: dict[int, int] = {}
        allocated = 0
        try:
            for op, slot, value in operations:
                if op == "write":
                    while allocated <= slot:
                        store.allocate()
                        allocated += 1
                    store.write(slot, value)
                    model[slot] = value
                elif op == "read":
                    if slot in model:
                        assert store.read(slot) == model[slot]
                    else:
                        with pytest.raises(StorageError):
                            store.read(slot)
                elif op == "free":
                    if slot in model:
                        store.free(slot)
                        del model[slot]
                    else:
                        with pytest.raises(StorageError):
                            store.free(slot)
                else:
                    store.sync()
            # Every live page is still readable after a final sync.
            store.sync()
            for slot, value in model.items():
                assert store.read(slot) == value
        finally:
            store.close()

    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["write", "free"]),
                      st.integers(0, 9)),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_memory_store_matches_dict_model(self, operations):
        store = MemoryPageStore()
        model: dict[int, str] = {}
        allocated = 0
        for op, slot in operations:
            if op == "write":
                while allocated <= slot:
                    store.allocate()
                    allocated += 1
                store.write(slot, f"v{slot}")
                model[slot] = f"v{slot}"
            elif slot in model:
                store.free(slot)
                del model[slot]
        assert len(store) == len(model)


class TestRStarModel:
    @given(
        seed=st.integers(0, 10_000),
        operation_count=st.integers(10, 120),
        max_entries=st.sampled_from([4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_mixed_inserts_and_deletes(self, seed, operation_count,
                                       max_entries):
        """Interleaved inserts/deletes keep the tree equivalent to a
        brute-force set under range queries and invariants."""
        rng = np.random.default_rng(seed)
        tree = RStarTree(3, max_entries=max_entries)
        alive: dict[int, np.ndarray] = {}
        next_id = 0
        for _ in range(operation_count):
            if alive and rng.uniform() < 0.35:
                victim = int(rng.choice(list(alive)))
                removed = tree.delete(
                    Rect.from_point(alive[victim]),
                    lambda item, v=victim: item == v)
                assert removed == 1
                del alive[victim]
            else:
                point = rng.uniform(size=3)
                tree.insert_point(point, next_id)
                alive[next_id] = point
                next_id += 1
        tree.check_invariants()
        assert len(tree) == len(alive)
        query = rng.uniform(size=3)
        epsilon = float(rng.uniform(0.1, 0.6))
        hits = sorted(item for _, item in
                      tree.search_within(query, epsilon))
        brute = sorted(
            key for key, point in alive.items()
            if np.linalg.norm(point - query) <= epsilon)
        assert hits == brute
