"""The v3 fixed-layout node codec: round trips, zero-copy, rejection."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.index.geometry import Rect
from repro.index.node import Entry, Node
from repro.index.nodecodec import _NODE_HEADER, decode_node, encode_node


def leaf_node(page_id=7, count=5, dims=4):
    node = Node(page_id, 0)
    rng = np.random.default_rng(page_id)
    for index in range(count):
        low = rng.random(dims)
        node.entries.append(Entry(Rect(low, low + 0.25),
                                  item=(1000 + index, index)))
    return node


def internal_node(page_id=9, count=4, dims=4):
    node = Node(page_id, 2)
    rng = np.random.default_rng(page_id)
    for index in range(count):
        low = rng.random(dims)
        node.entries.append(Entry(Rect(low, low + 0.5),
                                  child_id=50 + index))
    return node


class TestRoundTrip:
    def test_leaf_round_trips_exactly(self):
        node = leaf_node()
        rebuilt = decode_node(node.page_id, encode_node(node))
        assert (rebuilt.page_id, rebuilt.level) == (node.page_id, 0)
        assert rebuilt.entries == node.entries  # Entry.__eq__ is structural

    def test_internal_round_trips_exactly(self):
        node = internal_node()
        rebuilt = decode_node(node.page_id, encode_node(node))
        assert (rebuilt.page_id, rebuilt.level) == (node.page_id, 2)
        assert rebuilt.entries == node.entries

    def test_empty_node_round_trips(self):
        node = Node(3, 0)
        payload = encode_node(node)
        assert len(payload) == _NODE_HEADER.size
        rebuilt = decode_node(3, payload)
        assert rebuilt.entries == [] and rebuilt.level == 0

    def test_bounds_are_bit_identical(self):
        node = leaf_node(count=8)
        rebuilt = decode_node(node.page_id, encode_node(node))
        for original, copy in zip(node.entries, rebuilt.entries):
            assert original.rect.lower.tobytes() == \
                copy.rect.lower.tobytes()
            assert original.rect.upper.tobytes() == \
                copy.rect.upper.tobytes()

    def test_leaf_items_are_python_int_tuples(self):
        rebuilt = decode_node(7, encode_node(leaf_node()))
        for entry in rebuilt.entries:
            assert type(entry.item) is tuple
            assert all(type(part) is int for part in entry.item)

    def test_child_ids_are_python_ints(self):
        rebuilt = decode_node(9, encode_node(internal_node()))
        assert all(type(entry.child_id) is int
                   for entry in rebuilt.entries)


class TestZeroCopy:
    def test_decoded_bounds_view_the_buffer(self):
        node = leaf_node(count=3)
        payload = bytearray(encode_node(node))  # writable backing store
        rebuilt = decode_node(node.page_id, memoryview(payload))
        lower = rebuilt.entries[0].rect.lower
        assert lower.base is not None  # a view, not a copy
        before = lower[0]
        # Flip one byte inside the first lower bound: the decoded
        # array must observe it, proving it aliases the buffer.
        payload[_NODE_HEADER.size] ^= 0xFF
        assert rebuilt.entries[0].rect.lower[0] != before

    def test_decode_runs_no_pickle(self, monkeypatch):
        payload = encode_node(leaf_node())

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("decode_node called pickle.loads")

        monkeypatch.setattr(pickle, "loads", forbidden)
        decode_node(7, payload)


class TestRejection:
    def test_non_node_payload_rejected(self):
        with pytest.raises(StorageError, match="R\\*-tree nodes only"):
            encode_node({"not": "a node"})

    def test_mixed_dims_rejected(self):
        node = leaf_node(dims=4)
        low = np.zeros(3)
        node.entries.append(Entry(Rect(low, low + 1.0), item=(1, 2)))
        with pytest.raises(StorageError, match="dimensions"):
            encode_node(node)

    def test_non_pair_leaf_item_rejected(self):
        node = Node(1, 0)
        low = np.zeros(2)
        node.entries.append(Entry(Rect(low, low + 1.0), item=(1, 2, 3)))
        with pytest.raises(StorageError, match="pair of ints"):
            encode_node(node)

    def test_non_int_leaf_item_rejected(self):
        node = Node(1, 0)
        low = np.zeros(2)
        node.entries.append(Entry(Rect(low, low + 1.0), item=(1.5, 2)))
        with pytest.raises(StorageError, match="pair of ints"):
            encode_node(node)

    def test_truncated_payload_rejected(self):
        payload = encode_node(leaf_node())
        with pytest.raises(StorageError, match="expected"):
            decode_node(7, payload[:-8])

    def test_short_header_rejected(self):
        with pytest.raises(StorageError, match="node header"):
            decode_node(7, b"\0\0\0")

    def test_negative_level_rejected(self):
        payload = bytearray(encode_node(leaf_node()))
        payload[:4] = (-1).to_bytes(4, "little", signed=True)
        with pytest.raises(StorageError, match="negative node level"):
            decode_node(7, bytes(payload))

    def test_entries_without_dims_rejected(self):
        payload = _NODE_HEADER.pack(0, 3, 0)
        with pytest.raises(StorageError, match="zero dimensions"):
            decode_node(7, payload)
