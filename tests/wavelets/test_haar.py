"""Unit and property tests for the Haar transforms (paper Section 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.exceptions import WaveletError
from repro.wavelets.haar import (
    denormalize_2d,
    haar_1d,
    haar_2d,
    haar_2d_standard,
    ihaar_1d,
    ihaar_2d,
    ihaar_2d_standard,
    is_power_of_two,
    normalize_2d,
    signature_from_transform,
)


def square_images(max_side_exp: int = 5):
    """Hypothesis strategy: square power-of-two float images."""
    return st.integers(1, max_side_exp).flatmap(
        lambda e: npst.arrays(
            np.float64, (2 ** e, 2 ** e),
            elements=st.floats(0.0, 1.0, allow_nan=False),
        )
    )


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(2 ** k) for k in range(12))

    def test_non_powers(self):
        assert not any(is_power_of_two(v) for v in (0, -1, -4, 3, 6, 12, 100))


class TestHaar1D:
    def test_paper_example_unnormalized(self):
        # Section 3.1's worked example.
        np.testing.assert_allclose(haar_1d([2, 2, 5, 7]), [4, 2, 0, 1])

    def test_paper_example_normalized(self):
        np.testing.assert_allclose(
            haar_1d([2, 2, 5, 7], normalize=True),
            [4, 2, 0, 1 / np.sqrt(2)],
        )

    def test_first_coefficient_is_mean(self, rng):
        signal = rng.uniform(size=64)
        assert haar_1d(signal)[0] == pytest.approx(signal.mean())

    def test_constant_signal_has_zero_details(self):
        out = haar_1d(np.full(16, 0.7))
        assert out[0] == pytest.approx(0.7)
        np.testing.assert_allclose(out[1:], 0.0, atol=1e-12)

    def test_single_element_is_identity(self):
        np.testing.assert_allclose(haar_1d([0.3]), [0.3])

    def test_batched_matches_individual(self, rng):
        batch = rng.uniform(size=(5, 32))
        together = haar_1d(batch)
        for row in range(5):
            np.testing.assert_allclose(together[row], haar_1d(batch[row]))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(WaveletError):
            haar_1d([1.0, 2.0, 3.0])

    def test_rejects_empty(self):
        with pytest.raises(WaveletError):
            haar_1d([])

    @given(npst.arrays(np.float64, st.sampled_from([2, 4, 8, 16, 32, 64]),
                       elements=st.floats(-10, 10, allow_nan=False)))
    @settings(max_examples=50)
    def test_roundtrip_property(self, signal):
        np.testing.assert_allclose(ihaar_1d(haar_1d(signal)), signal,
                                   atol=1e-9)

    @given(npst.arrays(np.float64, st.sampled_from([4, 8, 16]),
                       elements=st.floats(-10, 10, allow_nan=False)))
    @settings(max_examples=30)
    def test_normalized_roundtrip_property(self, signal):
        coeffs = haar_1d(signal, normalize=True)
        np.testing.assert_allclose(ihaar_1d(coeffs, normalize=True),
                                   signal, atol=1e-9)

    def test_linearity(self, rng):
        a = rng.uniform(size=16)
        b = rng.uniform(size=16)
        np.testing.assert_allclose(haar_1d(a + 2 * b),
                                   haar_1d(a) + 2 * haar_1d(b), atol=1e-12)


class TestHaar2D:
    def test_top_left_is_mean(self, rng):
        image = rng.uniform(size=(16, 16))
        assert haar_2d(image)[0, 0] == pytest.approx(image.mean())

    def test_constant_image_all_details_zero(self):
        out = haar_2d(np.full((8, 8), 0.25))
        assert out[0, 0] == pytest.approx(0.25)
        out[0, 0] = 0.0
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_2x2_explicit(self):
        # One averaging/differencing step with the Figure 2 signs.
        image = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = haar_2d(image)
        assert out[0, 0] == pytest.approx(2.5)          # average
        assert out[0, 1] == pytest.approx((-1 + 2 - 3 + 4) / 4)  # horizontal
        assert out[1, 0] == pytest.approx((-1 - 2 + 3 + 4) / 4)  # vertical
        assert out[1, 1] == pytest.approx((1 - 2 - 3 + 4) / 4)   # diagonal

    def test_nested_layout_self_similarity(self, rng):
        """The top-left m x m block equals the transform of the m x m
        block-average image — the property the DP algorithm relies on."""
        image = rng.uniform(size=(32, 32))
        full = haar_2d(image)
        for m in (2, 4, 8, 16):
            factor = 32 // m
            averages = image.reshape(m, factor, m, factor).mean(axis=(1, 3))
            np.testing.assert_allclose(full[:m, :m], haar_2d(averages),
                                       atol=1e-9)

    def test_rejects_non_square(self, rng):
        with pytest.raises(WaveletError):
            haar_2d(rng.uniform(size=(4, 8)))

    def test_rejects_non_power_of_two(self, rng):
        with pytest.raises(WaveletError):
            haar_2d(rng.uniform(size=(6, 6)))

    @given(square_images())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, image):
        np.testing.assert_allclose(ihaar_2d(haar_2d(image)), image,
                                   atol=1e-9)

    def test_batched_matches_individual(self, rng):
        batch = rng.uniform(size=(4, 8, 8))
        together = haar_2d(batch)
        for k in range(4):
            np.testing.assert_allclose(together[k], haar_2d(batch[k]))


class TestHaar2DStandard:
    def test_differs_from_nonstandard(self, rng):
        image = rng.uniform(size=(8, 8))
        assert not np.allclose(haar_2d(image), haar_2d_standard(image))

    def test_top_left_is_mean(self, rng):
        image = rng.uniform(size=(16, 16))
        assert haar_2d_standard(image)[0, 0] == pytest.approx(image.mean())

    @given(square_images(4))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, image):
        np.testing.assert_allclose(
            ihaar_2d_standard(haar_2d_standard(image)), image, atol=1e-9
        )

    def test_normalized_roundtrip(self, rng):
        image = rng.uniform(size=(16, 16))
        coeffs = haar_2d_standard(image, normalize=True)
        np.testing.assert_allclose(
            ihaar_2d_standard(coeffs, normalize=True), image, atol=1e-9
        )


class TestNormalization2D:
    def test_coarsest_scale_unchanged(self, rng):
        coeffs = haar_2d(rng.uniform(size=(8, 8)))
        normalized = normalize_2d(coeffs)
        # Scale q=1 detail coefficients and the average keep their values.
        np.testing.assert_allclose(normalized[:2, :2], coeffs[:2, :2])

    def test_scale_q_divided_by_q(self, rng):
        coeffs = haar_2d(rng.uniform(size=(16, 16)))
        normalized = normalize_2d(coeffs)
        np.testing.assert_allclose(normalized[:4, 4:8], coeffs[:4, 4:8] / 4)
        np.testing.assert_allclose(normalized[8:, 8:], coeffs[8:, 8:] / 8)

    def test_denormalize_inverts(self, rng):
        coeffs = haar_2d(rng.uniform(size=(16, 16)))
        np.testing.assert_allclose(denormalize_2d(normalize_2d(coeffs)),
                                   coeffs, atol=1e-12)


class TestSignatureExtraction:
    def test_signature_is_top_left_block(self, rng):
        coeffs = haar_2d(rng.uniform(size=(16, 16)))
        np.testing.assert_allclose(signature_from_transform(coeffs, 4),
                                   coeffs[:4, :4])

    def test_rejects_oversized_signature(self, rng):
        coeffs = haar_2d(rng.uniform(size=(8, 8)))
        with pytest.raises(WaveletError):
            signature_from_transform(coeffs, 16)

    def test_rejects_non_power_of_two(self, rng):
        coeffs = haar_2d(rng.uniform(size=(8, 8)))
        with pytest.raises(WaveletError):
            signature_from_transform(coeffs, 3)
