"""Property tests: the Figure 3-5 DP is *bit-identical* to the naive
per-window transform.

The existing suite checks DP == naive to a tolerance; these Hypothesis
tests tighten that to exact float equality (``np.array_equal``, no
atol) across randomized image shapes — including odd and non-dyadic
sides — strides, window ranges and signature sizes.  Every DP
coefficient is an elementwise combination of exactly the same inputs
the naive transform combines, in the same order, so the results must
agree bit for bit; any drift would invalidate the golden-signature
fixtures and the byte-identical parallel-ingest guarantee.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wavelets.sliding import (
    dp_sliding_signatures,
    dp_sliding_signatures_stack,
    dp_window_signatures,
    naive_sliding_signatures,
    naive_window_signatures,
)


def _channel(height: int, width: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(size=(height, width))


class TestDPBitIdentical:
    @given(
        height=st.integers(17, 48),
        width=st.integers(17, 48),
        stride=st.sampled_from([1, 2, 4, 8]),
        w_max=st.sampled_from([8, 16]),
        seed=st.integers(0, 2 ** 32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_levels_bit_identical(self, height, width, stride, w_max,
                                      seed):
        """DP == naive exactly, on every dyadic level, for arbitrary
        (including odd / non-dyadic) image shapes and strides."""
        channel = _channel(height, width, seed)
        dp = dp_sliding_signatures(channel, s=2, w_max=w_max,
                                   stride=stride)
        naive = naive_sliding_signatures(channel, s=2, w_max=w_max,
                                         stride=stride)
        assert set(dp) == set(naive)
        for w in dp:
            assert dp[w].signatures.shape == naive[w].signatures.shape
            assert np.array_equal(dp[w].signatures, naive[w].signatures)

    @given(
        height=st.integers(33, 56),
        width=st.integers(33, 56),
        stride=st.sampled_from([1, 2, 4]),
        w_min=st.sampled_from([4, 8, 16]),
        s=st.sampled_from([2, 4]),
        seed=st.integers(0, 2 ** 32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_window_ranges_and_signature_sizes(self, height, width, stride,
                                               w_min, s, seed):
        """Restricting the reported window range and growing the
        signature never breaks exact equality."""
        channel = _channel(height, width, seed)
        dp = dp_sliding_signatures(channel, s=s, w_max=32, stride=stride,
                                   w_min=w_min)
        naive = naive_sliding_signatures(channel, s=s, w_max=32,
                                         stride=stride, w_min=w_min)
        assert set(dp) == set(naive)
        assert min(dp) == w_min
        for w in dp:
            assert np.array_equal(dp[w].signatures, naive[w].signatures)

    @given(
        height=st.integers(16, 40),
        width=st.integers(16, 40),
        w=st.sampled_from([4, 8, 16]),
        stride=st.sampled_from([1, 2, 4, 8]),
        seed=st.integers(0, 2 ** 32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_single_window_size(self, height, width, w, stride, seed):
        """The single-size DP entry point equals the naive transform of
        the same windows, bit for bit."""
        channel = _channel(height, width, seed)
        dp = dp_window_signatures(channel, w=w, s=2, stride=stride)
        naive = naive_window_signatures(channel, w=w, s=2, stride=stride)
        assert dp.window_size == naive.window_size
        assert dp.stride == naive.stride
        assert np.array_equal(dp.signatures, naive.signatures)


class TestStackedDPBitIdentical:
    @given(
        batch=st.integers(1, 3),
        height=st.integers(17, 40),
        width=st.integers(17, 40),
        stride=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 2 ** 32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_stack_equals_naive_per_channel(self, batch, height, width,
                                            stride, seed):
        """The batched multi-channel DP (the ingest hot path) matches
        the naive transform of each channel exactly."""
        channels = np.random.default_rng(seed).uniform(
            size=(batch, height, width))
        stacked = dp_sliding_signatures_stack(channels, s=2, w_max=16,
                                              stride=stride)
        for index in range(batch):
            naive = naive_sliding_signatures(channels[index], s=2,
                                             w_max=16, stride=stride)
            assert set(stacked) == set(naive)
            for w in stacked:
                assert np.array_equal(stacked[w][index],
                                      naive[w].signatures)
