"""Edge cases across the wavelet substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WaveletError
from repro.wavelets.haar import haar_2d, ihaar_2d, normalize_2d
from repro.wavelets.sliding import (
    dp_sliding_signatures,
    naive_window_signatures,
)


class TestExactFits:
    def test_window_equals_image(self, rng):
        """A single window exactly covering the image."""
        channel = rng.uniform(size=(16, 16))
        grid = naive_window_signatures(channel, w=16, s=2, stride=8)
        assert grid.grid_shape == (1, 1)
        np.testing.assert_allclose(grid.signatures[0, 0],
                                   haar_2d(channel)[:2, :2])

    def test_dp_window_equals_image(self, rng):
        channel = rng.uniform(size=(16, 16))
        levels = dp_sliding_signatures(channel, s=2, w_max=16, stride=8)
        assert levels[16].grid_shape == (1, 1)

    def test_non_square_image_extreme_aspect(self, rng):
        channel = rng.uniform(size=(8, 120))
        levels = dp_sliding_signatures(channel, s=2, w_max=8, stride=4)
        naive = naive_window_signatures(channel, w=8, s=2, stride=4)
        np.testing.assert_allclose(levels[8].signatures,
                                   naive.signatures, atol=1e-9)

    def test_signature_equals_window(self, rng):
        """s == w: the signature is the full transform."""
        channel = rng.uniform(size=(16, 16))
        grid = naive_window_signatures(channel, w=4, s=4, stride=4)
        window = channel[0:4, 0:4]
        np.testing.assert_allclose(grid.signatures[0, 0], haar_2d(window))


class TestBatchedShapes:
    def test_3d_batch(self, rng):
        batch = rng.uniform(size=(5, 8, 8))
        out = haar_2d(batch)
        assert out.shape == (5, 8, 8)
        np.testing.assert_allclose(ihaar_2d(out), batch, atol=1e-9)

    def test_4d_batch(self, rng):
        batch = rng.uniform(size=(2, 3, 8, 8))
        out = haar_2d(batch)
        assert out.shape == (2, 3, 8, 8)
        for i in range(2):
            for j in range(3):
                np.testing.assert_allclose(out[i, j], haar_2d(batch[i, j]))

    def test_normalize_batched(self, rng):
        batch = haar_2d(rng.uniform(size=(4, 8, 8)))
        normalized = normalize_2d(batch)
        for k in range(4):
            np.testing.assert_allclose(normalized[k],
                                       normalize_2d(batch[k]))


class TestDegenerateInputs:
    def test_1x1_image(self):
        out = haar_2d(np.array([[0.7]]))
        assert out[0, 0] == pytest.approx(0.7)

    def test_all_zeros(self):
        out = haar_2d(np.zeros((8, 8)))
        np.testing.assert_allclose(out, 0.0)

    def test_all_ones_window_signatures(self):
        grid = naive_window_signatures(np.ones((16, 16)), w=8, s=2,
                                       stride=4)
        expected = np.zeros((2, 2))
        expected[0, 0] = 1.0
        for i in range(grid.grid_shape[0]):
            for j in range(grid.grid_shape[1]):
                np.testing.assert_allclose(grid.signatures[i, j],
                                           expected, atol=1e-12)

    def test_extreme_values_no_overflow(self):
        big = np.full((8, 8), 1e12)
        out = haar_2d(big)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(ihaar_2d(out), big, rtol=1e-9)

    def test_negative_values_roundtrip(self, rng):
        signed = rng.uniform(-5, 5, size=(16, 16))
        np.testing.assert_allclose(ihaar_2d(haar_2d(signed)), signed,
                                   atol=1e-9)


class TestValidationMessages:
    def test_dp_rejects_wmin_above_wmax(self, rng):
        channel = rng.uniform(size=(32, 32))
        result = dp_sliding_signatures(channel, s=2, w_max=8, stride=4,
                                       w_min=16)
        assert result == {}  # empty range, not an error

    def test_zero_size_image_rejected(self):
        with pytest.raises(WaveletError):
            naive_window_signatures(np.empty((0, 8)), w=2, s=2, stride=2)
