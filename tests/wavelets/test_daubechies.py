"""Tests for the Daubechies-4 transform (WBIIS substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.exceptions import WaveletError
from repro.wavelets.daubechies import (
    D4_HIGH,
    D4_LOW,
    daubechies_1d,
    daubechies_2d,
    idaubechies_1d,
    idaubechies_2d,
)


class TestFilters:
    def test_lowpass_preserves_constants(self):
        # sum of taps = sqrt(2): a constant signal keeps its energy.
        assert D4_LOW.sum() == pytest.approx(np.sqrt(2.0))

    def test_highpass_kills_constants(self):
        assert D4_HIGH.sum() == pytest.approx(0.0, abs=1e-12)

    def test_orthonormality(self):
        assert D4_LOW @ D4_LOW == pytest.approx(1.0)
        assert D4_HIGH @ D4_HIGH == pytest.approx(1.0)
        assert D4_LOW @ D4_HIGH == pytest.approx(0.0, abs=1e-12)

    def test_highpass_kills_linear_ramps(self):
        # D4 has two vanishing moments.
        taps_times_index = (D4_HIGH * np.arange(4)).sum()
        assert taps_times_index == pytest.approx(0.0, abs=1e-12)


class TestDaubechies1D:
    def test_energy_preservation(self, rng):
        signal = rng.uniform(size=64)
        coeffs = daubechies_1d(signal)
        assert (coeffs ** 2).sum() == pytest.approx((signal ** 2).sum())

    def test_constant_signal_concentrates_energy(self):
        coeffs = daubechies_1d(np.full(16, 1.0), levels=2)
        # All detail halves are ~0.
        np.testing.assert_allclose(coeffs[4:], 0.0, atol=1e-12)

    @given(npst.arrays(np.float64, st.sampled_from([8, 16, 32]),
                       elements=st.floats(-5, 5, allow_nan=False)))
    @settings(max_examples=40)
    def test_roundtrip_property(self, signal):
        np.testing.assert_allclose(
            idaubechies_1d(daubechies_1d(signal)), signal, atol=1e-9
        )

    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_roundtrip_each_level(self, rng, levels):
        signal = rng.uniform(size=32)
        coeffs = daubechies_1d(signal, levels=levels)
        np.testing.assert_allclose(idaubechies_1d(coeffs, levels=levels),
                                   signal, atol=1e-9)

    def test_rejects_short_signal(self):
        with pytest.raises(WaveletError):
            daubechies_1d(np.ones(2))

    def test_rejects_bad_levels(self, rng):
        with pytest.raises(WaveletError):
            daubechies_1d(rng.uniform(size=16), levels=4)

    def test_batched_matches_individual(self, rng):
        batch = rng.uniform(size=(3, 16))
        together = daubechies_1d(batch, levels=2)
        for k in range(3):
            np.testing.assert_allclose(together[k],
                                       daubechies_1d(batch[k], levels=2))


class TestDaubechies2D:
    def test_energy_preservation(self, rng):
        image = rng.uniform(size=(32, 32))
        coeffs = daubechies_2d(image, levels=3)
        assert (coeffs ** 2).sum() == pytest.approx((image ** 2).sum())

    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_roundtrip(self, rng, levels):
        image = rng.uniform(size=(32, 32))
        coeffs = daubechies_2d(image, levels=levels)
        np.testing.assert_allclose(idaubechies_2d(coeffs, levels=levels),
                                   image, atol=1e-9)

    def test_low_block_of_constant_image(self):
        """A constant image transforms to a constant LL block and zero
        details (up to periodic boundary effects, which D4 has none of
        for constants)."""
        coeffs = daubechies_2d(np.full((16, 16), 0.5), levels=2)
        low = coeffs[:4, :4]
        np.testing.assert_allclose(low, low[0, 0], atol=1e-12)
        details = coeffs.copy()
        details[:4, :4] = 0.0
        np.testing.assert_allclose(details, 0.0, atol=1e-12)

    def test_rejects_non_square(self, rng):
        with pytest.raises(WaveletError):
            daubechies_2d(rng.uniform(size=(8, 16)), levels=1)

    def test_rejects_too_many_levels(self, rng):
        with pytest.raises(WaveletError):
            daubechies_2d(rng.uniform(size=(16, 16)), levels=4)

    def test_shift_changes_coefficients(self, rng):
        """Unlike a histogram, wavelet signatures are location-aware —
        shifting content moves coefficient mass (the WBIIS weakness
        WALRUS targets)."""
        image = np.zeros((32, 32))
        image[4:12, 4:12] = 1.0
        shifted = np.roll(image, 16, axis=1)
        a = daubechies_2d(image, levels=2)[:8, :8]
        b = daubechies_2d(shifted, levels=2)[:8, :8]
        assert not np.allclose(a, b)
