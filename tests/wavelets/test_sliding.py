"""Tests for the sliding-window signature algorithms (Section 5.2).

The load-bearing property is DP == naive: the dynamic program of
Figures 3-5 must produce exactly the coefficients a full per-window
transform produces, for every window size, stride and signature size.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WaveletError
from repro.wavelets.haar import haar_2d
from repro.wavelets.sliding import (
    SignatureGrid,
    combine_signatures,
    dp_sliding_signatures,
    dp_window_signatures,
    naive_sliding_signatures,
    naive_window_signatures,
)


@pytest.fixture
def channel(rng) -> np.ndarray:
    return rng.uniform(size=(40, 56))


class TestSignatureGrid:
    def test_grid_geometry(self, channel):
        grid = naive_window_signatures(channel, w=8, s=2, stride=4)
        assert grid.window_size == 8
        assert grid.stride == 4
        ny, nx = grid.grid_shape
        assert ny == (40 - 8) // 4 + 1
        assert nx == (56 - 8) // 4 + 1
        assert grid.signature_size == 2

    def test_origin(self, channel):
        grid = naive_window_signatures(channel, w=8, s=2, stride=4)
        assert grid.origin(0, 0) == (0, 0)
        assert grid.origin(2, 3) == (8, 12)

    def test_positions_cover_grid(self, channel):
        grid = naive_window_signatures(channel, w=16, s=2, stride=8)
        positions = list(grid.positions())
        ny, nx = grid.grid_shape
        assert len(positions) == ny * nx
        # Every window fits in the image.
        for _, _, row, col in positions:
            assert row + 16 <= 40
            assert col + 16 <= 56

    def test_flat_shape(self, channel):
        grid = naive_window_signatures(channel, w=8, s=2, stride=8)
        ny, nx = grid.grid_shape
        assert grid.flat().shape == (ny * nx, 4)


class TestNaive:
    def test_matches_direct_transform(self, channel):
        grid = naive_window_signatures(channel, w=8, s=4, stride=8)
        for i, j, row, col in grid.positions():
            window = channel[row:row + 8, col:col + 8]
            np.testing.assert_allclose(grid.signatures[i, j],
                                       haar_2d(window)[:4, :4])

    def test_stride_larger_than_window_clamps(self, channel):
        grid = naive_window_signatures(channel, w=8, s=2, stride=32)
        assert grid.stride == 8  # min(w, t)

    def test_rejects_window_larger_than_image(self, channel):
        with pytest.raises(WaveletError):
            naive_window_signatures(channel, w=64, s=2, stride=8)

    def test_rejects_non_power_of_two_stride(self, channel):
        with pytest.raises(WaveletError):
            naive_window_signatures(channel, w=8, s=2, stride=3)


class TestCombineSignatures:
    def test_size_one(self, rng):
        blocks = rng.uniform(size=(4, 1, 1))
        out = combine_signatures(*blocks, m=1)
        assert out[0, 0] == pytest.approx(blocks[:, 0, 0].mean())

    def test_rejects_non_power_of_two(self, rng):
        blocks = rng.uniform(size=(4, 4, 4))
        with pytest.raises(WaveletError):
            combine_signatures(*blocks, m=3)

    def test_assembles_parent_transform(self, rng):
        """Four full child transforms -> full parent transform."""
        parent = rng.uniform(size=(16, 16))
        c1 = haar_2d(parent[:8, :8])
        c2 = haar_2d(parent[:8, 8:])
        c3 = haar_2d(parent[8:, :8])
        c4 = haar_2d(parent[8:, 8:])
        np.testing.assert_allclose(
            combine_signatures(c1, c2, c3, c4, 16), haar_2d(parent),
            atol=1e-9,
        )

    def test_truncated_children_suffice(self, rng):
        """Only the top-left m/2 block of each child is read."""
        parent = rng.uniform(size=(32, 32))
        target = haar_2d(parent)[:4, :4]
        children = [haar_2d(parent[:16, :16])[:2, :2],
                    haar_2d(parent[:16, 16:])[:2, :2],
                    haar_2d(parent[16:, :16])[:2, :2],
                    haar_2d(parent[16:, 16:])[:2, :2]]
        np.testing.assert_allclose(combine_signatures(*children, m=4),
                                   target, atol=1e-9)


class TestDynamicProgramming:
    @pytest.mark.parametrize("stride", [1, 2, 4, 8])
    @pytest.mark.parametrize("s", [2, 4])
    def test_equals_naive(self, channel, stride, s):
        dp = dp_sliding_signatures(channel, s=s, w_max=16, stride=stride)
        naive = naive_sliding_signatures(channel, s=s, w_max=16,
                                         stride=stride)
        assert dp.keys() == naive.keys()
        for w in dp:
            assert dp[w].stride == naive[w].stride
            np.testing.assert_allclose(dp[w].signatures,
                                       naive[w].signatures, atol=1e-9)

    def test_w_min_filters_levels(self, channel):
        levels = dp_sliding_signatures(channel, s=2, w_max=32, stride=4,
                                       w_min=8)
        assert sorted(levels) == [8, 16, 32]

    def test_single_window_size(self, channel):
        grid = dp_window_signatures(channel, w=16, s=2, stride=4)
        reference = naive_window_signatures(channel, w=16, s=2, stride=4)
        np.testing.assert_allclose(grid.signatures, reference.signatures,
                                   atol=1e-9)

    def test_signature_is_window_mean_for_s1(self, channel):
        levels = dp_sliding_signatures(channel, s=1, w_max=8, stride=8,
                                       w_min=8)
        grid = levels[8]
        for i, j, row, col in grid.positions():
            window_mean = channel[row:row + 8, col:col + 8].mean()
            assert grid.signatures[i, j, 0, 0] == pytest.approx(window_mean)

    def test_rejects_1d_input(self, rng):
        with pytest.raises(WaveletError):
            dp_sliding_signatures(rng.uniform(size=40), s=2, w_max=8,
                                  stride=4)

    def test_rejects_signature_larger_than_wmax(self, channel):
        with pytest.raises(WaveletError):
            dp_sliding_signatures(channel, s=16, w_max=8, stride=4)

    @given(
        height=st.integers(17, 40),
        width=st.integers(17, 40),
        stride=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=20, deadline=None)
    def test_dp_equals_naive_property(self, height, width, stride, seed):
        """DP == naive on arbitrary image shapes and strides."""
        channel = np.random.default_rng(seed).uniform(size=(height, width))
        dp = dp_sliding_signatures(channel, s=2, w_max=16, stride=stride)
        naive = naive_sliding_signatures(channel, s=2, w_max=16,
                                         stride=stride)
        for w in dp:
            np.testing.assert_allclose(dp[w].signatures,
                                       naive[w].signatures, atol=1e-9)

    def test_asymptotic_work_favours_dp(self, rng):
        """Sanity proxy for Figure 6: DP touches O(s^2) per window while
        the naive transform touches O(w^2); measure actual time on a
        workload big enough to dominate constant overhead."""
        import time

        channel = rng.uniform(size=(128, 128))
        start = time.perf_counter()
        dp_sliding_signatures(channel, s=2, w_max=64, stride=1)
        dp_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        naive_sliding_signatures(channel, s=2, w_max=64, stride=1)
        naive_elapsed = time.perf_counter() - start
        assert dp_elapsed < naive_elapsed


class TestStackedDP:
    """The batched multi-channel DP must equal the per-channel DP
    bit for bit — parallel ingest relies on it."""

    def test_stack_equals_per_channel(self, rng):
        from repro.wavelets.sliding import dp_sliding_signatures_stack

        channels = rng.uniform(size=(3, 40, 56))
        stacked = dp_sliding_signatures_stack(channels, s=2, w_max=16,
                                              stride=4)
        for index in range(channels.shape[0]):
            single = dp_sliding_signatures(channels[index], s=2, w_max=16,
                                           stride=4)
            for w, grid in single.items():
                assert np.array_equal(stacked[w][index], grid.signatures)

    def test_stack_single_channel(self, rng):
        from repro.wavelets.sliding import dp_sliding_signatures_stack

        channel = rng.uniform(size=(32, 32))
        stacked = dp_sliding_signatures_stack(channel[np.newaxis], s=2,
                                              w_max=8, stride=8)
        single = dp_sliding_signatures(channel, s=2, w_max=8, stride=8)
        for w, grid in single.items():
            assert np.array_equal(stacked[w][0], grid.signatures)
